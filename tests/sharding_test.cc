// Storage-sharding simulator tests: latency model tail behavior, kv cluster
// semantics, traffic replay accounting, and the end-to-end claim that lower
// fanout means lower latency (Fig. 4 mechanism).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/recursive.h"
#include "core/shp.h"
#include "graph/gen_social.h"
#include "graph/graph_builder.h"
#include "sharding/kv_cluster.h"
#include "sharding/latency_model.h"
#include "sharding/multiget_sim.h"
#include "sharding/traffic_replay.h"

namespace shp {
namespace {

TEST(LatencyModel, MultiGetLatencyMonotoneInFanout) {
  // E[max of n draws] grows with n — the "tail at scale" effect.
  const LatencyModel model(LatencyModelConfig{});
  Rng rng(1);
  auto mean_at = [&](uint32_t fanout) {
    double total = 0;
    for (int i = 0; i < 5000; ++i) total += model.SampleMultiGet(fanout, &rng);
    return total / 5000;
  };
  const double f1 = mean_at(1);
  const double f5 = mean_at(5);
  const double f20 = mean_at(20);
  EXPECT_LT(f1, f5);
  EXPECT_LT(f5, f20);
}

TEST(LatencyModel, ZeroFanoutIsFree) {
  const LatencyModel model(LatencyModelConfig{});
  Rng rng(2);
  EXPECT_DOUBLE_EQ(model.SampleMultiGet(0, &rng), 0.0);
}

TEST(LatencyModel, AllDistributionsArePositive) {
  for (auto dist : {LatencyDistribution::kLognormal,
                    LatencyDistribution::kExponential,
                    LatencyDistribution::kPareto}) {
    LatencyModelConfig config;
    config.distribution = dist;
    const LatencyModel model(config);
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
      EXPECT_GT(model.SampleRequest(&rng), 0.0);
    }
  }
}

TEST(LatencyModel, SizedRequestsChargePerRecord) {
  LatencyModelConfig config;
  config.shape = 1e-6;  // nearly deterministic service time
  config.overhead = 0.0;
  const LatencyModel model(config);
  Rng rng(4);
  const uint32_t light[2] = {1, 1};
  const uint32_t heavy[2] = {100, 100};
  const double light_latency =
      model.SampleMultiGetSized(light, 2, 0.1, &rng);
  const double heavy_latency =
      model.SampleMultiGetSized(heavy, 2, 0.1, &rng);
  EXPECT_NEAR(heavy_latency - light_latency, 9.9, 0.5);
}

TEST(MultiGetSweep, PercentilesOrderedAndGrowing) {
  MultiGetSweepConfig config;
  config.max_fanout = 20;
  config.samples_per_fanout = 4000;
  const auto rows = RunMultiGetSweep(config);
  ASSERT_EQ(rows.size(), 20u);
  for (const auto& row : rows) {
    EXPECT_LE(row.p50, row.p90);
    EXPECT_LE(row.p90, row.p95);
    EXPECT_LE(row.p95, row.p99);
  }
  EXPECT_LT(rows[0].mean, rows[19].mean);
  // Paper headline: fanout 40 vs 10 halves mean latency; at 20 vs 5 the
  // ratio is already well above 1.2.
  EXPECT_GT(rows[19].mean / rows[4].mean, 1.2);
}

TEST(KvCluster, FanoutEqualsDistinctServers) {
  GraphBuilder b;
  b.AddHyperedge(0, {0, 1, 2, 3});
  const BipartiteGraph g = b.Build();
  KvClusterConfig config;
  config.num_servers = 3;
  const KvClusterSim cluster(config, {0, 0, 1, 2});
  Rng rng(5);
  const QueryTrace trace = cluster.IssueQuery(g, 0, &rng);
  EXPECT_EQ(trace.fanout, 3u);
  EXPECT_GT(trace.latency, 0.0);
}

TEST(KvCluster, FanoutBoundedByDegreeAndServerCount) {
  SocialGraphConfig social;
  social.num_users = 600;
  social.avg_degree = 12;
  const BipartiteGraph g = GenerateSocialGraph(social);
  KvClusterConfig config;
  config.num_servers = 4;
  const KvClusterSim cluster(
      config, Partition::Random(g.num_data(), 4, 7).assignment());
  Rng rng(6);
  MultiGetScratch scratch;
  scratch.Prepare(g);
  for (VertexId q = 0; q < g.num_queries(); ++q) {
    const QueryTrace trace = cluster.IssueQuery(g, q, &rng, &scratch);
    EXPECT_LE(trace.fanout,
              std::min<uint32_t>(g.QueryDegree(q), config.num_servers));
    EXPECT_GE(trace.fanout, g.QueryDegree(q) > 0 ? 1u : 0u);
  }
}

TEST(KvCluster, ScratchAndConvenienceOverloadsAgree) {
  GraphBuilder b;
  b.AddHyperedge(0, {0, 1, 2, 3});
  b.AddHyperedge(1, {1, 3});
  const BipartiteGraph g = b.Build();
  KvClusterConfig config;
  config.num_servers = 3;
  const KvClusterSim cluster(config, {0, 0, 1, 2});
  MultiGetScratch scratch;
  scratch.Prepare(g);
  for (VertexId q = 0; q < g.num_queries(); ++q) {
    // Same seed → same draws: the scratch overload must not change the RNG
    // consumption pattern of the convenience overload.
    Rng rng_a(40 + q), rng_b(40 + q);
    const QueryTrace a = cluster.IssueQuery(g, q, &rng_a);
    const QueryTrace b2 = cluster.IssueQuery(g, q, &rng_b, &scratch);
    EXPECT_EQ(a.fanout, b2.fanout);
    EXPECT_DOUBLE_EQ(a.latency, b2.latency);
  }
  EXPECT_EQ(scratch.grow_events, 0u);
}

TEST(KvCluster, DualReadContactsBothLocations) {
  GraphBuilder b;
  b.AddHyperedge(0, {0, 1});
  const BipartiteGraph g = b.Build();
  KvClusterConfig config;
  config.num_servers = 3;
  KvClusterSim cluster(config, {0, 0});
  MultiGetScratch scratch;
  scratch.Prepare(g);
  // Record 1 is migrating from server 0 to server 2: the query must fan out
  // to both and report one dual-read record.
  const std::vector<BucketId> secondary = {-1, 2};
  DualReadView view;
  view.secondary = secondary.data();
  Rng rng(7);
  const QueryTrace trace = cluster.IssueQueryDual(g, 0, &rng, view, &scratch);
  EXPECT_EQ(trace.fanout, 2u);
  EXPECT_EQ(trace.dual_records, 1u);
  EXPECT_EQ(scratch.serveability_checks, 2u);

  // After the cutover the secondary alone serves: primary unassigned is
  // legal while the view still names a live home.
  cluster.SetRecordServer(1, -1);
  const std::vector<BucketId> restore = {-1, 2};
  view.secondary = restore.data();
  const QueryTrace after = cluster.IssueQueryDual(g, 0, &rng, view, &scratch);
  EXPECT_EQ(after.fanout, 2u);  // server 0 (record 0) + server 2 (record 1)
  EXPECT_EQ(after.dual_records, 0u);
}

TEST(KvCluster, MigrationInterferenceRaisesLatency) {
  GraphBuilder b;
  b.AddHyperedge(0, {0, 1});
  const BipartiteGraph g = b.Build();
  KvClusterConfig config;
  config.num_servers = 2;
  config.latency.shape = 1e-6;  // nearly deterministic service time
  const KvClusterSim cluster(config, {0, 1});
  MultiGetScratch scratch;
  scratch.Prepare(g);
  const std::vector<BucketId> secondary = {-1, -1};
  const std::vector<int32_t> idle = {0, 0};
  const std::vector<int32_t> streaming = {1, 0};
  DualReadView view;
  view.secondary = secondary.data();
  view.interference = 5.0;
  view.copy_streams = idle.data();
  Rng rng_a(8), rng_b(8);
  const QueryTrace quiet = cluster.IssueQueryDual(g, 0, &rng_a, view, &scratch);
  view.copy_streams = streaming.data();
  const QueryTrace busy = cluster.IssueQueryDual(g, 0, &rng_b, view, &scratch);
  EXPECT_NEAR(busy.latency - quiet.latency, 5.0, 1.0);
}

TEST(Replay, CountsAndAveragesConsistent) {
  SocialGraphConfig social;
  social.num_users = 800;
  social.avg_degree = 10;
  const BipartiteGraph g = GenerateSocialGraph(social);
  KvClusterConfig config;
  config.num_servers = 10;
  const auto assignment =
      Partition::Random(g.num_data(), 10, 3).assignment();
  const KvClusterSim cluster(config, assignment);
  ReplayConfig replay;
  replay.num_requests = 20000;
  const ReplayReport report = ReplayTraffic(g, cluster, replay);
  // Documented denominator: every issued request is either served (counted
  // in exactly one fanout bucket) or empty — nothing silently dropped.
  uint64_t total = 0;
  for (uint64_t c : report.count_by_fanout) total += c;
  EXPECT_EQ(total + report.empty_queries, replay.num_requests);
  EXPECT_GT(report.average_fanout, 1.0);
  EXPECT_GT(report.average_latency, 0.0);
  // The reusable scratch never grew after its up-front reservation.
  EXPECT_EQ(report.scratch_grow_events, 0u);
}

TEST(Replay, EmptyQueriesCountedNotDropped) {
  // Query 2 is isolated (degree 0): with trivial-query dropping disabled it
  // survives into the graph and replays as an empty query.
  GraphBuilder b(/*num_queries=*/3, /*num_data=*/4);
  b.AddHyperedge(0, {0, 1});
  b.AddHyperedge(1, {2, 3});
  GraphBuilder::Options keep_all;
  keep_all.drop_trivial_queries = false;
  keep_all.compact_queries = false;
  const BipartiteGraph g = b.Build(keep_all);
  ASSERT_EQ(g.num_queries(), 3);
  KvClusterConfig config;
  config.num_servers = 2;
  const KvClusterSim cluster(config, {0, 0, 1, 1});
  ReplayConfig replay;
  replay.num_requests = 9000;
  replay.popularity_skew = 0.0;  // uniform: the isolated query gets traffic
  const ReplayReport report = ReplayTraffic(g, cluster, replay);
  EXPECT_GT(report.empty_queries, 0u);
  uint64_t served = 0;
  for (uint64_t c : report.count_by_fanout) served += c;
  EXPECT_EQ(served + report.empty_queries, replay.num_requests);
  // Latency averages are over served queries only.
  EXPECT_GT(report.average_latency, 0.0);
}

TEST(Replay, DeterministicInSeed) {
  SocialGraphConfig social;
  social.num_users = 500;
  social.avg_degree = 8;
  const BipartiteGraph g = GenerateSocialGraph(social);
  KvClusterConfig config;
  config.num_servers = 6;
  const KvClusterSim cluster(
      config, Partition::Random(g.num_data(), 6, 11).assignment());
  ReplayConfig replay;
  replay.num_requests = 15000;
  replay.seed = 1234;
  const ReplayReport a = ReplayTraffic(g, cluster, replay);
  const ReplayReport b = ReplayTraffic(g, cluster, replay);
  EXPECT_EQ(a.count_by_fanout, b.count_by_fanout);
  EXPECT_EQ(a.empty_queries, b.empty_queries);
  EXPECT_DOUBLE_EQ(a.average_latency, b.average_latency);
  EXPECT_DOUBLE_EQ(a.average_fanout, b.average_fanout);
  for (size_t f = 0; f < a.p99_latency_by_fanout.size(); ++f) {
    EXPECT_DOUBLE_EQ(a.p99_latency_by_fanout[f], b.p99_latency_by_fanout[f]);
  }
  // A different seed samples different traffic.
  replay.seed = 4321;
  const ReplayReport c = ReplayTraffic(g, cluster, replay);
  EXPECT_NE(a.count_by_fanout, c.count_by_fanout);
}

TEST(Replay, ShpShardingBeatsRandomEndToEnd) {
  // The Fig. 4b headline: SHP sharding produces both lower fanout and lower
  // average latency than random sharding on the same traffic.
  SocialGraphConfig social;
  social.num_users = 2000;
  social.avg_degree = 16;
  const BipartiteGraph g = GenerateSocialGraph(social);

  RecursiveOptions options;
  options.k = 16;
  const auto shp_assignment = RecursivePartitioner(options).Run(g).assignment;
  const auto random_assignment =
      Partition::Random(g.num_data(), 16, 9).assignment();

  KvClusterConfig config;
  config.num_servers = 16;
  ReplayConfig replay;
  replay.num_requests = 30000;
  const ReplayReport shp_report =
      ReplayTraffic(g, KvClusterSim(config, shp_assignment), replay);
  const ReplayReport random_report =
      ReplayTraffic(g, KvClusterSim(config, random_assignment), replay);

  EXPECT_LT(shp_report.average_fanout, random_report.average_fanout * 0.85);
  EXPECT_LT(shp_report.average_latency, random_report.average_latency);
}

TEST(Replay, LatencyIncreasesWithObservedFanout) {
  SocialGraphConfig social;
  social.num_users = 1500;
  social.avg_degree = 14;
  const BipartiteGraph g = GenerateSocialGraph(social);
  KvClusterConfig config;
  config.num_servers = 12;
  const auto assignment =
      Partition::Random(g.num_data(), 12, 1).assignment();
  ReplayConfig replay;
  replay.num_requests = 40000;
  const ReplayReport report =
      ReplayTraffic(g, KvClusterSim(config, assignment), replay);
  // Compare a low and a high fanout bucket that both have mass.
  int low = -1, high = -1;
  for (size_t f = 1; f < report.count_by_fanout.size(); ++f) {
    if (report.count_by_fanout[f] > 200) {
      if (low == -1) low = static_cast<int>(f);
      high = static_cast<int>(f);
    }
  }
  ASSERT_NE(low, -1);
  ASSERT_GT(high, low);
  EXPECT_LT(report.mean_latency_by_fanout[static_cast<size_t>(low)],
            report.mean_latency_by_fanout[static_cast<size_t>(high)]);
}

}  // namespace
}  // namespace shp
