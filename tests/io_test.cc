// I/O tests: hgr and edge-list parsing (including malformed inputs), binary
// snapshot round-trip and corruption detection.
#include <gtest/gtest.h>

#include <fstream>

#include "graph/graph_builder.h"
#include "graph/io_binary.h"
#include "graph/io_edgelist.h"
#include "graph/io_hgr.h"

namespace shp {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(HgrIo, ParsesPlainFormat) {
  const std::string content = "3 6\n1 2 6\n1 2 3 4\n4 5 6\n";
  auto result = ParseHgr(content);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const BipartiteGraph& g = result.value();
  EXPECT_EQ(g.num_queries(), 3u);
  EXPECT_EQ(g.num_data(), 6u);
  EXPECT_EQ(g.num_edges(), 10u);
}

TEST(HgrIo, SkipsCommentsAndDropsTrivial) {
  const std::string content = "% comment\n2 3\n1\n1 2 3\n";
  auto result = ParseHgr(content);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_queries(), 1u);  // singleton edge dropped
}

TEST(HgrIo, ParsesWeightedFormatIgnoringWeights) {
  // fmt=1: first token of each hyperedge line is its weight.
  const std::string content = "2 4 1\n10 1 2\n20 3 4\n";
  auto result = ParseHgr(content);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().num_edges(), 4u);
}

TEST(HgrIo, RejectsOutOfRangeVertex) {
  auto result = ParseHgr("1 3\n1 4\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(HgrIo, RejectsTruncatedFile) {
  auto result = ParseHgr("3 6\n1 2\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(HgrIo, RejectsGarbageHeader) {
  EXPECT_FALSE(ParseHgr("abc def\n").ok());
  EXPECT_FALSE(ParseHgr("").ok());
  EXPECT_FALSE(ParseHgr("0 5\n").ok());
}

TEST(HgrIo, WriteReadRoundTrip) {
  GraphBuilder b;
  b.AddHyperedge(0, {0, 1, 5});
  b.AddHyperedge(1, {0, 1, 2, 3});
  b.AddHyperedge(2, {3, 4, 5});
  const BipartiteGraph g = b.Build();

  const std::string path = TempPath("roundtrip.hgr");
  ASSERT_TRUE(WriteHgr(g, path).ok());
  auto back = ReadHgr(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().num_queries(), g.num_queries());
  EXPECT_EQ(back.value().num_data(), g.num_data());
  EXPECT_EQ(back.value().num_edges(), g.num_edges());
}

TEST(HgrIo, MissingFileIsIoError) {
  auto result = ReadHgr("/nonexistent/path/x.hgr");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(EdgeListIo, ParsesAndCompactsSparseIds) {
  const std::string content = "# comment\n100 7\n100 9\n200 7\n200 9\n";
  auto result = ParseBipartiteEdgeList(content);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().num_queries(), 2u);
  EXPECT_EQ(result.value().num_data(), 2u);
  EXPECT_EQ(result.value().num_edges(), 4u);
}

TEST(EdgeListIo, RejectsMalformedLine) {
  auto result = ParseBipartiteEdgeList("1 two\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(EdgeListIo, RejectsNegativeIds) {
  EXPECT_FALSE(ParseBipartiteEdgeList("-1 2\n").ok());
}

TEST(EdgeListIo, RejectsEmptyInput) {
  EXPECT_FALSE(ParseBipartiteEdgeList("# only comments\n").ok());
}

TEST(EdgeListIo, UnipartiteConversionBuildsHyperedges) {
  // Friendship edges 0-1, 0-2: hyperedge(0) = {0,1,2}, hyperedge(1) = {1,0},
  // hyperedge(2) = {2,0} (paper §4.1: each user is query and data).
  const std::string path = TempPath("unipartite.txt");
  {
    std::ofstream out(path);
    out << "0 1\n0 2\n";
  }
  auto result = ReadUnipartiteAsHypergraph(path);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const BipartiteGraph& g = result.value();
  EXPECT_EQ(g.num_queries(), 3u);
  EXPECT_EQ(g.num_data(), 3u);
  EXPECT_EQ(g.QueryNeighbors(0).size(), 3u);
}

TEST(EdgeListIo, WriteRoundTrip) {
  GraphBuilder b;
  b.AddHyperedge(0, {0, 1});
  b.AddHyperedge(1, {1, 2});
  const BipartiteGraph g = b.Build();
  const std::string path = TempPath("edges.txt");
  ASSERT_TRUE(WriteBipartiteEdgeList(g, path).ok());
  auto back = ReadBipartiteEdgeList(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().num_edges(), g.num_edges());
}

TEST(BinaryIo, RoundTripPreservesGraph) {
  GraphBuilder b;
  b.AddHyperedge(0, {0, 1, 5});
  b.AddHyperedge(1, {0, 1, 2, 3});
  b.AddHyperedge(2, {3, 4, 5});
  const BipartiteGraph g = b.Build();

  const std::string path = TempPath("graph.shpg");
  ASSERT_TRUE(WriteBinaryGraph(g, path).ok());
  auto back = ReadBinaryGraph(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().query_adj(), g.query_adj());
  EXPECT_EQ(back.value().data_adj(), g.data_adj());
  EXPECT_EQ(back.value().query_offsets(), g.query_offsets());
}

TEST(BinaryIo, DetectsBitFlip) {
  GraphBuilder b;
  b.AddHyperedge(0, {0, 1});
  b.AddHyperedge(1, {1, 2});
  const std::string path = TempPath("corrupt.shpg");
  ASSERT_TRUE(WriteBinaryGraph(b.Build(), path).ok());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(24);  // somewhere in the payload
    char byte;
    f.read(&byte, 1);
    f.seekp(24);
    byte = static_cast<char>(byte ^ 0x40);
    f.write(&byte, 1);
  }
  auto result = ReadBinaryGraph(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(BinaryIo, DetectsTruncation) {
  GraphBuilder b;
  b.AddHyperedge(0, {0, 1});
  b.AddHyperedge(1, {1, 2});
  const std::string path = TempPath("trunc.shpg");
  ASSERT_TRUE(WriteBinaryGraph(b.Build(), path).ok());
  // Truncate the file.
  std::ofstream(path, std::ios::binary | std::ios::trunc) << "SHPG";
  EXPECT_FALSE(ReadBinaryGraph(path).ok());
}

TEST(BinaryIo, RejectsWrongMagic) {
  const std::string path = TempPath("magic.shpg");
  std::ofstream(path, std::ios::binary) << "NOPExxxxxxxxxxxxxxxx";
  auto result = ReadBinaryGraph(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace shp
