// I/O tests: hgr and edge-list parsing (including malformed inputs), binary
// snapshot round-trip and corruption detection, and mangled-fixture
// regressions — truncated files, flipped bytes, oversized counts, trailing
// garbage — all of which must surface as a Status, never a crash or an
// unbounded allocation.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/checksum.h"
#include "graph/graph_builder.h"
#include "graph/io_binary.h"
#include "graph/io_edgelist.h"
#include "graph/io_hgr.h"
#include "graph/io_partition.h"

namespace shp {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(HgrIo, ParsesPlainFormat) {
  const std::string content = "3 6\n1 2 6\n1 2 3 4\n4 5 6\n";
  auto result = ParseHgr(content);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const BipartiteGraph& g = result.value();
  EXPECT_EQ(g.num_queries(), 3u);
  EXPECT_EQ(g.num_data(), 6u);
  EXPECT_EQ(g.num_edges(), 10u);
}

TEST(HgrIo, SkipsCommentsAndDropsTrivial) {
  const std::string content = "% comment\n2 3\n1\n1 2 3\n";
  auto result = ParseHgr(content);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_queries(), 1u);  // singleton edge dropped
}

TEST(HgrIo, ParsesWeightedFormatIgnoringWeights) {
  // fmt=1: first token of each hyperedge line is its weight.
  const std::string content = "2 4 1\n10 1 2\n20 3 4\n";
  auto result = ParseHgr(content);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().num_edges(), 4u);
}

TEST(HgrIo, RejectsOutOfRangeVertex) {
  auto result = ParseHgr("1 3\n1 4\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(HgrIo, RejectsTruncatedFile) {
  auto result = ParseHgr("3 6\n1 2\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(HgrIo, RejectsGarbageHeader) {
  EXPECT_FALSE(ParseHgr("abc def\n").ok());
  EXPECT_FALSE(ParseHgr("").ok());
  EXPECT_FALSE(ParseHgr("0 5\n").ok());
}

TEST(HgrIo, WriteReadRoundTrip) {
  GraphBuilder b;
  b.AddHyperedge(0, {0, 1, 5});
  b.AddHyperedge(1, {0, 1, 2, 3});
  b.AddHyperedge(2, {3, 4, 5});
  const BipartiteGraph g = b.Build();

  const std::string path = TempPath("roundtrip.hgr");
  ASSERT_TRUE(WriteHgr(g, path).ok());
  auto back = ReadHgr(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().num_queries(), g.num_queries());
  EXPECT_EQ(back.value().num_data(), g.num_data());
  EXPECT_EQ(back.value().num_edges(), g.num_edges());
}

TEST(HgrIo, MissingFileIsIoError) {
  auto result = ReadHgr("/nonexistent/path/x.hgr");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(EdgeListIo, ParsesAndCompactsSparseIds) {
  const std::string content = "# comment\n100 7\n100 9\n200 7\n200 9\n";
  auto result = ParseBipartiteEdgeList(content);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().num_queries(), 2u);
  EXPECT_EQ(result.value().num_data(), 2u);
  EXPECT_EQ(result.value().num_edges(), 4u);
}

TEST(EdgeListIo, RejectsMalformedLine) {
  auto result = ParseBipartiteEdgeList("1 two\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(EdgeListIo, RejectsNegativeIds) {
  EXPECT_FALSE(ParseBipartiteEdgeList("-1 2\n").ok());
}

TEST(EdgeListIo, RejectsEmptyInput) {
  EXPECT_FALSE(ParseBipartiteEdgeList("# only comments\n").ok());
}

TEST(EdgeListIo, UnipartiteConversionBuildsHyperedges) {
  // Friendship edges 0-1, 0-2: hyperedge(0) = {0,1,2}, hyperedge(1) = {1,0},
  // hyperedge(2) = {2,0} (paper §4.1: each user is query and data).
  const std::string path = TempPath("unipartite.txt");
  {
    std::ofstream out(path);
    out << "0 1\n0 2\n";
  }
  auto result = ReadUnipartiteAsHypergraph(path);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const BipartiteGraph& g = result.value();
  EXPECT_EQ(g.num_queries(), 3u);
  EXPECT_EQ(g.num_data(), 3u);
  EXPECT_EQ(g.QueryNeighbors(0).size(), 3u);
}

TEST(EdgeListIo, WriteRoundTrip) {
  GraphBuilder b;
  b.AddHyperedge(0, {0, 1});
  b.AddHyperedge(1, {1, 2});
  const BipartiteGraph g = b.Build();
  const std::string path = TempPath("edges.txt");
  ASSERT_TRUE(WriteBipartiteEdgeList(g, path).ok());
  auto back = ReadBipartiteEdgeList(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().num_edges(), g.num_edges());
}

TEST(BinaryIo, RoundTripPreservesGraph) {
  GraphBuilder b;
  b.AddHyperedge(0, {0, 1, 5});
  b.AddHyperedge(1, {0, 1, 2, 3});
  b.AddHyperedge(2, {3, 4, 5});
  const BipartiteGraph g = b.Build();

  const std::string path = TempPath("graph.shpg");
  ASSERT_TRUE(WriteBinaryGraph(g, path).ok());
  auto back = ReadBinaryGraph(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().query_adj(), g.query_adj());
  EXPECT_EQ(back.value().data_adj(), g.data_adj());
  EXPECT_EQ(back.value().query_offsets(), g.query_offsets());
}

TEST(BinaryIo, DetectsBitFlip) {
  GraphBuilder b;
  b.AddHyperedge(0, {0, 1});
  b.AddHyperedge(1, {1, 2});
  const std::string path = TempPath("corrupt.shpg");
  ASSERT_TRUE(WriteBinaryGraph(b.Build(), path).ok());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(24);  // somewhere in the payload
    char byte;
    f.read(&byte, 1);
    f.seekp(24);
    byte = static_cast<char>(byte ^ 0x40);
    f.write(&byte, 1);
  }
  auto result = ReadBinaryGraph(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(BinaryIo, DetectsTruncation) {
  GraphBuilder b;
  b.AddHyperedge(0, {0, 1});
  b.AddHyperedge(1, {1, 2});
  const std::string path = TempPath("trunc.shpg");
  ASSERT_TRUE(WriteBinaryGraph(b.Build(), path).ok());
  // Truncate the file.
  std::ofstream(path, std::ios::binary | std::ios::trunc) << "SHPG";
  EXPECT_FALSE(ReadBinaryGraph(path).ok());
}

TEST(BinaryIo, RejectsWrongMagic) {
  const std::string path = TempPath("magic.shpg");
  std::ofstream(path, std::ios::binary) << "NOPExxxxxxxxxxxxxxxx";
  auto result = ReadBinaryGraph(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

// ---- mangled-fixture regressions: hand-crafted binary snapshots ----

// Builds a binary graph snapshot byte-for-byte, with a VALID trailing FNV-1a
// checksum, so structural validation paths past the checksum are reachable.
class BinaryFixture {
 public:
  BinaryFixture() { bytes_ = {'S', 'H', 'P', 'G'}; }

  template <typename T>
  BinaryFixture& Value(T v) {
    const auto* p = reinterpret_cast<const uint8_t*>(&v);
    bytes_.insert(bytes_.end(), p, p + sizeof(T));
    return *this;
  }

  template <typename T>
  BinaryFixture& Vector(const std::vector<T>& vec) {
    for (const T& v : vec) Value(v);
    return *this;
  }

  std::string WriteTo(const std::string& name) {
    const uint64_t checksum =
        Fnv1a64(bytes_.data() + 4, bytes_.size() - 4, kFnv1a64Init);
    std::vector<uint8_t> out = bytes_;
    const auto* p = reinterpret_cast<const uint8_t*>(&checksum);
    out.insert(out.end(), p, p + sizeof(checksum));
    const std::string path = TempPath(name);
    std::ofstream f(path, std::ios::binary);
    f.write(reinterpret_cast<const char*>(out.data()),
            static_cast<std::streamsize>(out.size()));
    return path;
  }

 private:
  std::vector<uint8_t> bytes_;
};

TEST(BinaryIo, RejectsOversizedEdgeCountBeforeAllocating) {
  // A 44-byte file whose header claims 10^15 edges: the size pin must reject
  // it before ReadVector tries an 8 PB resize.
  const std::string path =
      BinaryFixture()
          .Value(uint32_t{1})                       // version
          .Value(uint32_t{1})                       // num_queries
          .Value(uint32_t{1})                       // num_data
          .Value(uint64_t{1000000000000000ull})     // num_edges (absurd)
          .Value(uint64_t{0})                       // a little fake payload
          .Value(uint64_t{1})
          .WriteTo("oversized.shpg");
  auto result = ReadBinaryGraph(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(BinaryIo, RejectsNonMonotonicOffsets) {
  // Checksum is valid; the decreasing query offsets must still be rejected
  // (they would abort inside the BipartiteGraph constructor otherwise).
  const std::string path =
      BinaryFixture()
          .Value(uint32_t{1})  // version
          .Value(uint32_t{2})  // num_queries
          .Value(uint32_t{2})  // num_data
          .Value(uint64_t{2})  // num_edges
          .Vector(std::vector<uint64_t>{0, 2, 2})  // query offsets (ok)
          .Vector(std::vector<uint32_t>{0, 1})     // query adj
          .Vector(std::vector<uint64_t>{0, 2, 1})  // data offsets: 2 > 1 (!)
          .Vector(std::vector<uint32_t>{0, 0})     // data adj
          .WriteTo("nonmono.shpg");
  auto result = ReadBinaryGraph(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(BinaryIo, RejectsOutOfRangeAdjacencyIds) {
  const std::string path =
      BinaryFixture()
          .Value(uint32_t{1})  // version
          .Value(uint32_t{2})  // num_queries
          .Value(uint32_t{2})  // num_data
          .Value(uint64_t{2})  // num_edges
          .Vector(std::vector<uint64_t>{0, 2, 2})  // query offsets
          .Vector(std::vector<uint32_t>{0, 9})     // query adj: 9 >= num_data
          .Vector(std::vector<uint64_t>{0, 1, 2})  // data offsets
          .Vector(std::vector<uint32_t>{0, 0})     // data adj
          .WriteTo("oorange.shpg");
  auto result = ReadBinaryGraph(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(BinaryIo, RejectsTrailingGarbage) {
  GraphBuilder b;
  b.AddHyperedge(0, {0, 1});
  b.AddHyperedge(1, {1, 2});
  const std::string path = TempPath("trailing.shpg");
  ASSERT_TRUE(WriteBinaryGraph(b.Build(), path).ok());
  std::ofstream(path, std::ios::binary | std::ios::app) << "extra";
  auto result = ReadBinaryGraph(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(BinaryIo, EveryTruncationPointIsAStatus) {
  // Cut a valid snapshot at every byte boundary: each prefix must come back
  // as a clean Status (truncation or corruption), never a crash.
  GraphBuilder b;
  b.AddHyperedge(0, {0, 1, 2});
  b.AddHyperedge(1, {1, 2});
  const std::string path = TempPath("cutpoints.shpg");
  ASSERT_TRUE(WriteBinaryGraph(b.Build(), path).ok());
  std::ifstream in(path, std::ios::binary);
  std::vector<char> full((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  for (size_t cut = 0; cut < full.size(); ++cut) {
    const std::string cut_path = TempPath("cutpoint_now.shpg");
    std::ofstream(cut_path, std::ios::binary | std::ios::trunc)
        .write(full.data(), static_cast<std::streamsize>(cut));
    auto result = ReadBinaryGraph(cut_path);
    EXPECT_FALSE(result.ok()) << "prefix of " << cut << " bytes accepted";
  }
}

TEST(EdgeListIo, RejectsTrailingGarbageOnLine) {
  auto result = ParseBipartiteEdgeList("1 2 junk\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  EXPECT_FALSE(ParseBipartiteEdgeList("1 2 3\n").ok());
}

TEST(PartitionIo, RoundTrip) {
  const std::vector<BucketId> assignment = {0, 2, 1, 1, 3};
  const std::string path = TempPath("part.txt");
  ASSERT_TRUE(WritePartition(assignment, path).ok());
  auto back = ReadPartition(path, /*k=*/4, assignment.size());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), assignment);
}

TEST(PartitionIo, RejectsMangledInput) {
  const std::string path = TempPath("part_bad.txt");
  // Trailing garbage after the bucket number.
  std::ofstream(path, std::ios::trunc) << "0\n1 stray\n";
  auto r1 = ReadPartition(path, 4, 0);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kCorruption);
  // Non-numeric line.
  std::ofstream(path, std::ios::trunc) << "zero\n";
  EXPECT_FALSE(ReadPartition(path, 4, 0).ok());
  // Bucket out of range.
  std::ofstream(path, std::ios::trunc) << "0\n7\n";
  auto r2 = ReadPartition(path, 4, 0);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kOutOfRange);
  // Truncated: fewer entries than expected.
  std::ofstream(path, std::ios::trunc) << "0\n1\n";
  EXPECT_FALSE(ReadPartition(path, 4, /*expected_size=*/5).ok());
}

}  // namespace
}  // namespace shp
