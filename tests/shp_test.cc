// Driver-level tests: SHP-k and SHP-2/r invariants (balance, leaf mapping,
// quality vs random), planted recovery, incremental repartitioning,
// multi-dimensional balancing, and property sweeps over k × seed × family.
#include <gtest/gtest.h>

#include <set>

#include "core/incremental.h"
#include "core/multidim.h"
#include "core/recursive.h"
#include "core/shp.h"
#include "graph/gen_planted.h"
#include "graph/gen_social.h"
#include "graph/gen_web.h"

namespace shp {
namespace {

BipartiteGraph SmallSocial(uint64_t seed = 5) {
  SocialGraphConfig config;
  config.num_users = 1500;
  config.avg_degree = 10;
  config.seed = seed;
  return GenerateSocialGraph(config);
}

TEST(ShpK, ConvergesAndBalances) {
  const BipartiteGraph g = SmallSocial();
  ShpKOptions options;
  options.k = 8;
  options.seed = 2;
  const ShpResult result = ShpKPartitioner(options).Run(g);
  EXPECT_GT(result.iterations_run, 1u);
  const auto partition = Partition::FromAssignment(result.assignment, 8);
  EXPECT_TRUE(partition.IsBalanced(0.05)) << partition.ImbalanceRatio();
  EXPECT_FALSE(result.history.empty());
}

TEST(ShpK, CallbackCanStopEarly) {
  const BipartiteGraph g = SmallSocial();
  ShpKOptions options;
  options.k = 4;
  uint32_t seen = 0;
  ShpKPartitioner(options).Run(
      g, nullptr, [&](uint32_t, const IterationStats&, const Partition&) {
        return ++seen < 3;
      });
  EXPECT_EQ(seen, 3u);
}

TEST(ShpK, WarmStartRespectsAssignment) {
  const BipartiteGraph g = SmallSocial();
  ShpKOptions options;
  options.k = 4;
  options.max_iterations = 0;  // no refinement: warm start passes through
  const auto warm = Partition::Random(g.num_data(), 4, 9).assignment();
  const ShpResult result = ShpKPartitioner(options).RunFrom(g, warm);
  EXPECT_EQ(result.assignment, warm);
}

TEST(Shp2, LeafIdsCoverExactlyZeroToKMinusOne) {
  const BipartiteGraph g = SmallSocial();
  for (BucketId k : {2, 3, 5, 8, 16}) {
    RecursiveOptions options;
    options.k = k;
    const RecursiveResult result = RecursivePartitioner(options).Run(g);
    std::set<BucketId> used(result.assignment.begin(),
                            result.assignment.end());
    EXPECT_GE(static_cast<int>(used.size()), k - 1)
        << "k=" << k << ": nearly all leaves populated";
    for (BucketId b : used) {
      EXPECT_GE(b, 0);
      EXPECT_LT(b, k);
    }
  }
}

TEST(Shp2, NumLevelsIsCeilLog) {
  RecursiveOptions options;
  options.k = 8;
  EXPECT_EQ(RecursivePartitioner(options).NumLevels(), 3u);
  options.k = 9;
  EXPECT_EQ(RecursivePartitioner(options).NumLevels(), 4u);
  options.k = 2;
  EXPECT_EQ(RecursivePartitioner(options).NumLevels(), 1u);
  options.branching = 4;
  options.k = 16;
  EXPECT_EQ(RecursivePartitioner(options).NumLevels(), 2u);
}

TEST(Shp2, NonPowerOfTwoKeepsBalance) {
  const BipartiteGraph g = SmallSocial();
  RecursiveOptions options;
  options.k = 6;
  const RecursiveResult result = RecursivePartitioner(options).Run(g);
  const auto partition = Partition::FromAssignment(result.assignment, 6);
  EXPECT_TRUE(partition.IsBalanced(0.06)) << partition.ImbalanceRatio();
}

TEST(Shp2, BranchingFourMatchesLevels) {
  const BipartiteGraph g = SmallSocial();
  RecursiveOptions options;
  options.k = 16;
  options.branching = 4;
  const RecursiveResult result = RecursivePartitioner(options).Run(g);
  EXPECT_EQ(result.levels_run, 2u);
  EXPECT_TRUE(
      Partition::FromAssignment(result.assignment, 16).IsBalanced(0.06));
}

TEST(Shp2, RecoverersPlantedPartitionAtLowMixing) {
  PlantedPartitionConfig config;
  config.num_data = 2000;
  config.num_queries = 5000;
  config.num_groups = 8;
  config.mixing = 0.01;
  const PlantedPartition planted = GeneratePlantedPartition(config);
  RecursiveOptions options;
  options.k = 8;
  const auto result = RecursivePartitioner(options).Run(planted.graph);
  const double fanout = AverageFanout(planted.graph, result.assignment);
  EXPECT_LT(fanout, 1.35) << "near-perfect recovery expected at 1% mixing";
}

TEST(Shp2, BeatsRandomOnWebGraph) {
  WebGraphConfig config;
  config.num_pages = 3000;
  const BipartiteGraph g = GenerateWebGraph(config);
  RecursiveOptions options;
  options.k = 16;
  const auto result = RecursivePartitioner(options).Run(g);
  const double shp_fanout = AverageFanout(g, result.assignment);
  const double random_fanout = AverageFanout(
      g, Partition::Random(g.num_data(), 16, 77).assignment());
  EXPECT_LT(shp_fanout, random_fanout * 0.6)
      << "web graphs have strong host locality to exploit";
}

// Property sweep: balance and quality hold across k × seed × family.
struct SweepCase {
  int family;  // 0 = social, 1 = web, 2 = planted
  BucketId k;
  uint64_t seed;
};

class ShpSweep : public testing::TestWithParam<SweepCase> {};

TEST_P(ShpSweep, BalancedAndBetterThanRandom) {
  const SweepCase param = GetParam();
  BipartiteGraph g;
  switch (param.family) {
    case 0: {
      SocialGraphConfig config;
      config.num_users = 1200;
      config.avg_degree = 9;
      config.seed = param.seed;
      g = GenerateSocialGraph(config);
      break;
    }
    case 1: {
      WebGraphConfig config;
      config.num_pages = 1200;
      config.seed = param.seed;
      g = GenerateWebGraph(config);
      break;
    }
    default: {
      PlantedPartitionConfig config;
      config.num_data = 1200;
      config.num_queries = 2400;
      config.num_groups = param.k;
      config.seed = param.seed;
      g = GeneratePlantedPartition(config).graph;
      break;
    }
  }
  RecursiveOptions options;
  options.k = param.k;
  options.seed = param.seed;
  const auto result = RecursivePartitioner(options).Run(g);
  const auto partition = Partition::FromAssignment(result.assignment, param.k);
  EXPECT_TRUE(partition.IsBalanced(0.08)) << partition.ImbalanceRatio();
  const double random_fanout = AverageFanout(
      g, Partition::Random(g.num_data(), param.k, 123).assignment());
  const double shp_fanout = AverageFanout(g, result.assignment);
  EXPECT_LE(shp_fanout, random_fanout * 1.001)
      << "family=" << param.family << " k=" << param.k;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ShpSweep,
    testing::Values(SweepCase{0, 2, 1}, SweepCase{0, 8, 1},
                    SweepCase{0, 16, 2}, SweepCase{1, 2, 1},
                    SweepCase{1, 8, 2}, SweepCase{1, 16, 1},
                    SweepCase{2, 4, 1}, SweepCase{2, 8, 2}),
    [](const testing::TestParamInfo<SweepCase>& info) {
      const char* family = info.param.family == 0   ? "social"
                           : info.param.family == 1 ? "web"
                                                    : "planted";
      return std::string(family) + "_k" + std::to_string(info.param.k) +
             "_s" + std::to_string(info.param.seed);
    });

// ------------------------------------------------------------ Incremental
TEST(Incremental, HighPenaltyFreezesAssignment) {
  const BipartiteGraph g = SmallSocial();
  RecursiveOptions base;
  base.k = 8;
  const auto previous = RecursivePartitioner(base).Run(g).assignment;

  IncrementalOptions options;
  options.base.k = 8;
  options.move_penalty = 1e6;  // prohibitive
  const IncrementalResult result =
      IncrementalRepartitioner(options).Repartition(g, previous);
  EXPECT_EQ(result.vertices_relocated, 0u);
}

TEST(Incremental, DampingReducesRelocations) {
  const BipartiteGraph g = SmallSocial();
  const auto previous =
      Partition::Random(g.num_data(), 8, 3).assignment();  // poor start
  auto relocations = [&](double damping) {
    IncrementalOptions options;
    options.base.k = 8;
    options.base.max_iterations = 5;
    options.probability_damping = damping;
    return IncrementalRepartitioner(options)
        .Repartition(g, previous)
        .vertices_relocated;
  };
  EXPECT_LT(relocations(0.1), relocations(1.0));
}

TEST(Incremental, PlacesNewVerticesAndBalances) {
  const BipartiteGraph g = SmallSocial();
  // Previous assignment covers only the first half of the vertices.
  std::vector<BucketId> previous(g.num_data() / 2);
  for (size_t v = 0; v < previous.size(); ++v) {
    previous[v] = static_cast<BucketId>(v % 8);
  }
  IncrementalOptions options;
  options.base.k = 8;
  const IncrementalResult result =
      IncrementalRepartitioner(options).Repartition(g, previous);
  EXPECT_EQ(result.vertices_new, g.num_data() - previous.size());
  EXPECT_TRUE(Partition::FromAssignment(result.shp.assignment, 8)
                  .IsBalanced(0.05));
}

// --------------------------------------------------------------- MultiDim
TEST(MultiDim, MergeAssignsExactSlots) {
  // 8 sub-buckets -> 2 final buckets, 4 each.
  std::vector<std::vector<double>> loads(8, std::vector<double>(2, 1.0));
  loads[0] = {10.0, 1.0};
  loads[1] = {1.0, 10.0};
  const auto merge = MultiDimBalancer::MergeSubBuckets(loads, 2, 4);
  std::vector<int> counts(2, 0);
  for (BucketId b : merge) {
    ASSERT_GE(b, 0);
    ASSERT_LT(b, 2);
    ++counts[static_cast<size_t>(b)];
  }
  EXPECT_EQ(counts[0], 4);
  EXPECT_EQ(counts[1], 4);
  // The two heavy sub-buckets should land in different final buckets.
  EXPECT_NE(merge[0], merge[1]);
}

TEST(MultiDim, BalancesTwoDimensions) {
  const BipartiteGraph g = SmallSocial();
  // Dimension 0: uniform; dimension 1: skewed toward low ids.
  std::vector<double> weights(static_cast<size_t>(g.num_data()) * 2);
  for (VertexId v = 0; v < g.num_data(); ++v) {
    weights[v * 2] = 1.0;
    weights[v * 2 + 1] = v < g.num_data() / 4 ? 4.0 : 1.0;
  }
  MultiDimOptions options;
  options.k = 4;
  options.oversample = 4;
  options.partition.k = 16;  // overwritten internally anyway
  const MultiDimResult result =
      MultiDimBalancer(options).Run(g, weights, 2);
  ASSERT_EQ(result.imbalance.size(), 2u);
  EXPECT_LT(result.imbalance[0], 0.25);
  EXPECT_LT(result.imbalance[1], 0.25);
  for (BucketId b : result.assignment) {
    ASSERT_GE(b, 0);
    ASSERT_LT(b, 4);
  }
}

// ----------------------------------------------------------------- Facade
TEST(Facade, AdaptersRunAndName) {
  const BipartiteGraph g = SmallSocial();
  auto shp2 = MakeShpRecursive({});
  EXPECT_EQ(shp2->name(), "SHP-2");
  auto result = shp2->Partition(g, 4, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), g.num_data());

  auto shpk = MakeShpK({});
  EXPECT_EQ(shpk->name(), "SHP-k");
  EXPECT_FALSE(shpk->Partition(g, 1, nullptr).ok()) << "k < 2 rejected";
}

TEST(Facade, SummaryFieldsConsistent) {
  const BipartiteGraph g = SmallSocial();
  auto assignment = MakeShpRecursive({})->Partition(g, 8, nullptr).value();
  const PartitionSummary summary = SummarizePartition(g, assignment, 8);
  EXPECT_GE(summary.fanout, 1.0);
  EXPECT_LE(summary.p_fanout, summary.fanout + 1e-12);
  EXPECT_EQ(summary.k, 8);
  EXPECT_GE(summary.imbalance, 0.0);
}

}  // namespace
}  // namespace shp
