// Incremental neighbor-data maintenance tests: randomized batched-move
// equivalence against a fresh Build, arena compaction behavior, executed
// move lists matching the partition delta (all broker strategies), and
// full-trajectory equivalence of the incremental refiner against the
// rebuild-everything reference path.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "core/move_broker.h"
#include "core/move_topology.h"
#include "core/partition.h"
#include "core/refiner.h"
#include "graph/gen_powerlaw.h"
#include "graph/gen_social.h"
#include "objective/neighbor_data.h"

namespace shp {
namespace {

BipartiteGraph TestGraph(uint64_t seed = 3) {
  PowerLawConfig config;
  config.num_queries = 300;
  config.num_data = 200;
  config.target_edges = 1400;
  config.seed = seed;
  return GeneratePowerLaw(config);
}

void ExpectSameContent(const QueryNeighborData& incremental,
                       const QueryNeighborData& fresh, const char* context) {
  ASSERT_EQ(incremental.num_queries(), fresh.num_queries()) << context;
  EXPECT_EQ(incremental.TotalEntries(), fresh.TotalEntries()) << context;
  EXPECT_TRUE(incremental.ContentEquals(fresh)) << context;
  for (VertexId q = 0; q < fresh.num_queries(); ++q) {
    const auto a = incremental.Entries(q);
    const auto b = fresh.Entries(q);
    ASSERT_EQ(a.size(), b.size()) << context << " q=" << q;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << context << " q=" << q << " i=" << i;
    }
  }
}

/// Draws a random batch of distinct-vertex moves and mutates `assignment`.
std::vector<VertexMove> RandomBatch(std::vector<BucketId>* assignment,
                                    BucketId k, uint64_t seed, uint64_t round,
                                    size_t batch_size) {
  std::vector<VertexMove> moves;
  const VertexId n = static_cast<VertexId>(assignment->size());
  for (size_t i = 0; i < batch_size; ++i) {
    const VertexId v = static_cast<VertexId>(
        HashToBounded(seed ^ 0xbeef, round, i, n));
    const BucketId from = (*assignment)[v];
    // Already moved this round? A round's moves must have distinct vertices.
    bool duplicate = false;
    for (const VertexMove& m : moves) duplicate |= m.v == v;
    if (duplicate) continue;
    const BucketId to = static_cast<BucketId>(
        HashToBounded(seed ^ 0xf00d, round, i + 1000, static_cast<uint64_t>(k)));
    if (to == from) continue;
    moves.push_back({v, from, to});
    (*assignment)[v] = to;
  }
  return moves;
}

TEST(NeighborDataIncremental, BatchedMovesMatchFreshBuild) {
  const BipartiteGraph g = TestGraph();
  const BucketId k = 8;
  std::vector<BucketId> assignment =
      Partition::Random(g.num_data(), k, 11).assignment();

  QueryNeighborData incremental;
  incremental.Build(g, assignment);
  for (uint64_t round = 0; round < 30; ++round) {
    // Vary batch sizes: single-digit trickles up to bulk churn.
    const size_t batch = 1 + static_cast<size_t>(
        HashToBounded(99, round, 0, 40));
    const std::vector<VertexMove> moves =
        RandomBatch(&assignment, k, 17, round, batch);
    std::vector<VertexId> touched;
    incremental.ApplyMoves(g, moves, nullptr, &touched);

    QueryNeighborData fresh;
    fresh.Build(g, assignment);
    ExpectSameContent(incremental, fresh, "after batch");

    // Touched-query report: exactly the queries adjacent to a moved vertex,
    // each once, ascending.
    std::vector<VertexId> expected;
    for (const VertexMove& m : moves) {
      const auto nbrs = g.DataNeighbors(m.v);
      expected.insert(expected.end(), nbrs.begin(), nbrs.end());
    }
    std::sort(expected.begin(), expected.end());
    expected.erase(std::unique(expected.begin(), expected.end()),
                   expected.end());
    EXPECT_EQ(touched, expected) << "round " << round;
  }
}

TEST(NeighborDataIncremental, GrowthIntoNewBucketsAndCompaction) {
  const BipartiteGraph g = TestGraph(5);
  // Start fully concentrated: every query has fanout 1, so almost every move
  // inserts a new bucket entry and exercises slack growth + relocation.
  std::vector<BucketId> assignment(g.num_data(), 0);
  QueryNeighborData incremental;
  incremental.Build(g, assignment);

  const BucketId k = 32;
  for (uint64_t round = 0; round < 40; ++round) {
    const std::vector<VertexMove> moves =
        RandomBatch(&assignment, k, 23, round, 25);
    incremental.ApplyMoves(g, moves);
    QueryNeighborData fresh;
    fresh.Build(g, assignment);
    ExpectSameContent(incremental, fresh, "growth round");
  }

  // Explicit compaction preserves content and drops relocation garbage to
  // the canonical fresh-build arena shape.
  QueryNeighborData fresh;
  fresh.Build(g, assignment);
  const uint64_t before = incremental.ArenaSlots();
  incremental.Compact();
  ExpectSameContent(incremental, fresh, "after Compact");
  EXPECT_LE(incremental.ArenaSlots(), before);
  EXPECT_EQ(incremental.ArenaSlots(), fresh.ArenaSlots())
      << "compacted arena must match a fresh build's layout volume";
}

TEST(NeighborDataIncremental, SingleMoveSplicesInPlace) {
  const BipartiteGraph g = TestGraph(9);
  const BucketId k = 4;
  std::vector<BucketId> assignment =
      Partition::Random(g.num_data(), k, 3).assignment();
  QueryNeighborData incremental;
  incremental.Build(g, assignment);

  for (uint64_t step = 0; step < 200; ++step) {
    const VertexId v = static_cast<VertexId>(
        HashToBounded(7, step, 0, g.num_data()));
    const BucketId from = assignment[v];
    const BucketId to = static_cast<BucketId>((from + 1 + step % (k - 1)) % k);
    if (to == from) continue;
    incremental.ApplyMove(g, v, from, to);
    assignment[v] = to;
  }
  QueryNeighborData fresh;
  fresh.Build(g, assignment);
  ExpectSameContent(incremental, fresh, "after 200 single moves");
}

// ----------------------------------------------------- executed move lists
class MoveOutcomeDelta
    : public testing::TestWithParam<MoveBrokerOptions::Strategy> {};

TEST_P(MoveOutcomeDelta, MovesMatchPartitionDelta) {
  const BipartiteGraph g = TestGraph(13);
  const BucketId k = 6;
  // Tight capacities force repair reversions, so the net list is exercised.
  const MoveTopology topo = MoveTopology::FullK(k, g.num_data(), 0.01);
  Partition partition = Partition::BalancedRandom(g.num_data(), k, 5);

  std::vector<BucketId> targets(g.num_data(), -1);
  std::vector<double> gains(g.num_data(), 0.0);
  for (VertexId v = 0; v < g.num_data(); ++v) {
    if (v % 3 == 0) continue;  // some vertices propose nothing
    targets[v] = static_cast<BucketId>(
        HashToBounded(31, 0, v, static_cast<uint64_t>(k)));
    if (targets[v] == partition.bucket_of(v)) targets[v] = -1;
    gains[v] = HashToUnitDouble(37, 1, v) - 0.3;  // mixed signs
  }

  MoveBrokerOptions options;
  options.strategy = GetParam();
  MoveBroker broker(options);
  const std::vector<BucketId> before = partition.assignment();
  const MoveOutcome outcome =
      broker.Apply(topo, targets, gains, 3, 0, &partition);

  // The move list IS the partition delta, net of repair.
  std::vector<VertexMove> expected;
  for (VertexId v = 0; v < g.num_data(); ++v) {
    if (partition.bucket_of(v) != before[v]) {
      expected.push_back({v, before[v], partition.bucket_of(v)});
    }
  }
  EXPECT_EQ(outcome.moves, expected);
  EXPECT_EQ(outcome.num_moved, expected.size());
  for (const VertexMove& m : outcome.moves) {
    EXPECT_EQ(m.to, targets[m.v]) << "a surviving move lands on its target";
    EXPECT_NE(m.from, m.to);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, MoveOutcomeDelta,
    testing::Values(MoveBrokerOptions::Strategy::kPlainProbability,
                    MoveBrokerOptions::Strategy::kHistogramMatching,
                    MoveBrokerOptions::Strategy::kExactPairing));

// ------------------------------------------------ refiner path equivalence
BipartiteGraph RefinerGraph() {
  SocialGraphConfig config;
  config.num_users = 700;
  config.avg_degree = 8;
  config.seed = 21;
  return GenerateSocialGraph(config);
}

TEST(RefinerIncremental, TrajectoryMatchesFullRebuildPath) {
  const BipartiteGraph g = RefinerGraph();
  const BucketId k = 8;
  const MoveTopology topo = MoveTopology::FullK(k, g.num_data(), 0.05);

  RefinerOptions incremental_options;
  incremental_options.exploration_probability = 0.05;
  incremental_options.incremental = true;
  // Always patch (never high-churn fallback) so the rebuild count below is
  // exactly 1; trajectories are identical either way.
  incremental_options.incremental_rebuild_fraction = 1.0;
  RefinerOptions full_options = incremental_options;
  full_options.incremental = false;

  Partition p_incremental = Partition::BalancedRandom(g.num_data(), k, 2);
  Partition p_full = p_incremental;
  Refiner incremental(g, incremental_options);
  Refiner full(g, full_options);

  for (uint64_t iter = 0; iter < 8; ++iter) {
    const IterationStats a =
        incremental.RunIteration(topo, &p_incremental, 9, iter);
    const IterationStats b = full.RunIteration(topo, &p_full, 9, iter);
    ASSERT_EQ(p_incremental.assignment(), p_full.assignment())
        << "iteration " << iter;
    EXPECT_EQ(a.num_moved, b.num_moved);
    EXPECT_DOUBLE_EQ(a.gain_moved, b.gain_moved);
    EXPECT_EQ(b.full_rebuild, true);
    EXPECT_EQ(a.full_rebuild, iter == 0)
        << "incremental path must rebuild only on the first iteration";
  }
  EXPECT_EQ(incremental.num_full_rebuilds(), 1u);
  EXPECT_EQ(full.num_full_rebuilds(), 8u);
}

TEST(RefinerIncremental, GroupedTopologyAndAnchorsStayEquivalent) {
  const BipartiteGraph g = RefinerGraph();
  MoveTopology topo;
  topo.k = 4;
  topo.full_k = false;
  topo.group_children = {{0, 1}, {2, 3}};
  topo.group_of_bucket = {0, 0, 1, 1};
  topo.capacity = MoveTopology::FullK(4, g.num_data(), 0.05).capacity;

  Partition p_incremental = Partition::BalancedRandom(g.num_data(), 4, 6);
  Partition p_full = p_incremental;
  const std::vector<BucketId> anchor = p_incremental.assignment();

  RefinerOptions options;
  options.incremental_rebuild_fraction = 1.0;
  RefinerOptions full_options = options;
  full_options.incremental = false;
  Refiner incremental(g, options);
  Refiner full(g, full_options);
  for (uint64_t iter = 0; iter < 5; ++iter) {
    incremental.RunIteration(topo, &p_incremental, 4, iter, nullptr, &anchor,
                             0.02);
    full.RunIteration(topo, &p_full, 4, iter, nullptr, &anchor, 0.02);
    ASSERT_EQ(p_incremental.assignment(), p_full.assignment())
        << "iteration " << iter;
  }
  EXPECT_EQ(incremental.num_full_rebuilds(), 1u);
}

TEST(RefinerIncremental, ExternalPartitionChangeTriggersRebuild) {
  const BipartiteGraph g = RefinerGraph();
  const BucketId k = 4;
  const MoveTopology topo = MoveTopology::FullK(k, g.num_data(), 0.05);
  Partition partition = Partition::BalancedRandom(g.num_data(), k, 8);
  RefinerOptions options;
  options.incremental_rebuild_fraction = 1.0;
  Refiner refiner(g, options);
  refiner.RunIteration(topo, &partition, 1, 0);
  refiner.RunIteration(topo, &partition, 1, 1);
  EXPECT_EQ(refiner.num_full_rebuilds(), 1u);

  // Mutate the partition behind the refiner's back: it must detect the
  // drift and rebuild rather than trust stale state.
  partition.Move(0, (partition.bucket_of(0) + 1) % k);
  partition.Move(1, (partition.bucket_of(1) + 1) % k);
  const IterationStats stats = refiner.RunIteration(topo, &partition, 1, 2);
  EXPECT_TRUE(stats.full_rebuild);
  EXPECT_EQ(refiner.num_full_rebuilds(), 2u);
  partition.CheckInvariants();
}

TEST(RefinerIncremental, SteadyStateRecomputesOnlyBlastRadius) {
  const BipartiteGraph g = RefinerGraph();
  const BucketId k = 8;
  const MoveTopology topo = MoveTopology::FullK(k, g.num_data(), 0.05);
  Partition partition = Partition::BalancedRandom(g.num_data(), k, 4);
  RefinerOptions options;
  options.exploration_probability = 0.0;
  options.incremental_rebuild_fraction = 1.0;
  Refiner refiner(g, options);

  IterationStats last;
  for (uint64_t iter = 0; iter < 20; ++iter) {
    last = refiner.RunIteration(topo, &partition, 6, iter);
    if (last.moved_fraction < 0.01) break;
  }
  // Converged: the final iterations must not be recomputing everything.
  EXPECT_LT(last.num_recomputed, g.num_data())
      << "steady-state iterations must skip clean vertices";
  EXPECT_EQ(refiner.num_full_rebuilds(), 1u);
}

}  // namespace
}  // namespace shp
