// Core partitioner tests: partition state, proposal matrix, gain-histogram
// matching, move broker balance guarantees, and the Fig. 2 local-minimum
// escape that motivates probabilistic fanout.
#include <gtest/gtest.h>

#include <random>

#include "core/gain_histogram.h"
#include "core/move_broker.h"
#include "core/move_topology.h"
#include "core/partition.h"
#include "core/proposal_matrix.h"
#include "core/shp_k.h"
#include "graph/gen_planted.h"
#include "graph/graph_builder.h"
#include "objective/objective.h"

namespace shp {
namespace {

// ------------------------------------------------------------- Partition
TEST(PartitionState, RandomIsNearlyBalanced) {
  const auto p = Partition::Random(100000, 16, 3);
  EXPECT_LT(p.ImbalanceRatio(), 0.03)
      << "random init guarantees near-perfect balance for large n (§3.1)";
  p.CheckInvariants();
}

TEST(PartitionState, MoveUpdatesSizes) {
  Partition p(10, 3);  // all in bucket 0
  EXPECT_EQ(p.bucket_size(0), 10u);
  p.Move(4, 2);
  EXPECT_EQ(p.bucket_size(0), 9u);
  EXPECT_EQ(p.bucket_size(2), 1u);
  p.Move(4, 2);  // no-op
  EXPECT_EQ(p.bucket_size(2), 1u);
  p.CheckInvariants();
}

TEST(PartitionState, ImbalanceRatioHandValue) {
  auto p = Partition::FromAssignment({0, 0, 0, 1}, 2);
  // max 3 vs ideal 2 -> 0.5.
  EXPECT_DOUBLE_EQ(p.ImbalanceRatio(), 0.5);
  EXPECT_FALSE(p.IsBalanced(0.4));
  EXPECT_TRUE(p.IsBalanced(0.5));
}

TEST(PartitionState, BucketCapacityFloorsAndFeasible) {
  // floor((1+0.05)*375) = 393 (not ceil -> never violates ε)...
  EXPECT_EQ(MoveTopology::BucketCapacity(3000, 8, 1, 0.05), 393u);
  // ...but stays feasible when ε would round below the even share.
  EXPECT_GE(MoveTopology::BucketCapacity(10, 3, 1, 0.0), 4u);
}

// -------------------------------------------------------- ProposalMatrix
TEST(ProposalMatrix, MinRatioProbability) {
  ProposalMatrix m;
  m.Add(0, 1, 10);
  m.Add(1, 0, 4);
  EXPECT_DOUBLE_EQ(m.MoveProbability(0, 1), 0.4);  // min(10,4)/10
  EXPECT_DOUBLE_EQ(m.MoveProbability(1, 0), 1.0);  // min(4,10)/4
  EXPECT_DOUBLE_EQ(m.MoveProbability(2, 3), 0.0);  // unknown pair
}

TEST(ProposalMatrix, MergeAndSortedPairs) {
  ProposalMatrix a, b;
  a.Add(0, 1);
  b.Add(0, 1, 2);
  b.Add(2, 0);
  a.Merge(b);
  EXPECT_EQ(a.Count(0, 1), 3u);
  const auto pairs = a.SortedPairs();
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], std::make_pair(0, 1));
  EXPECT_EQ(pairs[1], std::make_pair(2, 0));
}

// ----------------------------------------------------------- GainBinning
TEST(GainBinning, SignedExponentialLayout) {
  const GainBinning binning(1e-3, 2.0, 4);  // 9 bins, zero bin = 4
  EXPECT_EQ(binning.num_bins(), 9);
  EXPECT_EQ(binning.BinFor(0.0), 4);
  EXPECT_EQ(binning.BinFor(5e-4), 4);       // within zero width
  EXPECT_EQ(binning.BinFor(1.5e-3), 5);     // first positive level
  EXPECT_EQ(binning.BinFor(-1.5e-3), 3);    // first negative level
  EXPECT_EQ(binning.BinFor(1e9), 8);        // clamped top
  EXPECT_EQ(binning.BinFor(-1e9), 0);       // clamped bottom
}

TEST(GainBinning, RepresentativeSignsAndMonotonicity) {
  const GainBinning binning(1e-3, 2.0, 4);
  EXPECT_DOUBLE_EQ(binning.Representative(4), 0.0);
  double prev = -1e300;
  for (int bin = 0; bin < binning.num_bins(); ++bin) {
    const double rep = binning.Representative(bin);
    EXPECT_GT(rep, prev);
    prev = rep;
  }
}

TEST(MatchHistograms, SymmetricDemandFullyMatches) {
  const GainBinning binning;
  DirectedGainHistogram fwd, bwd;
  fwd.Init(binning);
  bwd.Init(binning);
  for (int i = 0; i < 10; ++i) {
    fwd.Add(binning, 1.0);
    bwd.Add(binning, 1.0);
  }
  const auto match = MatchHistograms(binning, fwd, bwd);
  EXPECT_DOUBLE_EQ(match.forward[static_cast<size_t>(binning.BinFor(1.0))],
                   1.0);
  EXPECT_DOUBLE_EQ(match.backward[static_cast<size_t>(binning.BinFor(1.0))],
                   1.0);
  EXPECT_DOUBLE_EQ(match.expected_swaps, 10.0);
}

TEST(MatchHistograms, AsymmetricDemandPartiallyMatches) {
  const GainBinning binning;
  DirectedGainHistogram fwd, bwd;
  fwd.Init(binning);
  bwd.Init(binning);
  for (int i = 0; i < 20; ++i) fwd.Add(binning, 2.0);
  for (int i = 0; i < 5; ++i) bwd.Add(binning, 2.0);
  const auto match = MatchHistograms(binning, fwd, bwd);
  const int bin = binning.BinFor(2.0);
  EXPECT_NEAR(match.forward[static_cast<size_t>(bin)], 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(match.backward[static_cast<size_t>(bin)], 1.0);
}

TEST(MatchHistograms, NegativePairsWithLargerPositive) {
  // §3.4: "A pair of positive and negative histogram bins can swap if the
  // sum of the gains is expected to be positive."
  const GainBinning binning;
  DirectedGainHistogram fwd, bwd;
  fwd.Init(binning);
  bwd.Init(binning);
  fwd.Add(binning, 8.0);    // strong positive one way
  bwd.Add(binning, -1.0);   // mild negative the other way
  const auto match = MatchHistograms(binning, fwd, bwd);
  EXPECT_GT(match.expected_swaps, 0.0);
  EXPECT_DOUBLE_EQ(
      match.backward[static_cast<size_t>(binning.BinFor(-1.0))], 1.0);
}

TEST(MatchHistograms, NegativePairsRejectedWhenSumNegative) {
  const GainBinning binning;
  DirectedGainHistogram fwd, bwd;
  fwd.Init(binning);
  bwd.Init(binning);
  fwd.Add(binning, 1.0);
  bwd.Add(binning, -8.0);
  const auto match = MatchHistograms(binning, fwd, bwd);
  EXPECT_DOUBLE_EQ(match.expected_swaps, 0.0);
}

TEST(MatchHistograms, OneSidedDemandDoesNotMove) {
  const GainBinning binning;
  DirectedGainHistogram fwd, bwd;
  fwd.Init(binning);
  bwd.Init(binning);
  for (int i = 0; i < 50; ++i) fwd.Add(binning, 3.0);
  const auto match = MatchHistograms(binning, fwd, bwd);
  EXPECT_DOUBLE_EQ(match.expected_swaps, 0.0)
      << "without opposing demand (and without slack) nothing may move";
}

// ------------------------------------------------------------ MoveBroker
TEST(MoveBroker, HardCapacityNeverExceeded) {
  // Start from an exactly balanced (feasible) state: the guarantee is that
  // one move round never pushes a bucket past capacity.
  const VertexId n = 1000;
  std::vector<BucketId> balanced(n);
  for (VertexId v = 0; v < n; ++v) balanced[v] = static_cast<BucketId>(v % 4);
  Partition partition = Partition::FromAssignment(balanced, 4);
  const MoveTopology topo = MoveTopology::FullK(4, n, 0.05);
  // Adversarial proposals: everyone wants bucket 0 with high gain.
  std::vector<BucketId> targets(n, 0);
  std::vector<double> gains(n, 5.0);
  for (VertexId v = 0; v < n; ++v) {
    if (partition.bucket_of(v) == 0) targets[v] = -1;
  }
  MoveBrokerOptions options;
  MoveBroker broker(options);
  broker.Apply(topo, targets, gains, 9, 0, &partition);
  partition.CheckInvariants();
  for (BucketId b = 0; b < 4; ++b) {
    EXPECT_LE(partition.bucket_size(b), topo.capacity[static_cast<size_t>(b)]);
  }
}

TEST(MoveBroker, PlainStrategyIgnoresNonPositiveGains) {
  const VertexId n = 100;
  Partition partition = Partition::Random(n, 2, 1);
  const MoveTopology topo = MoveTopology::FullK(2, n, 0.5);
  std::vector<BucketId> targets(n);
  std::vector<double> gains(n, -1.0);  // all harmful
  for (VertexId v = 0; v < n; ++v) {
    targets[v] = 1 - partition.bucket_of(v);
  }
  MoveBrokerOptions options;
  options.strategy = MoveBrokerOptions::Strategy::kPlainProbability;
  MoveBroker broker(options);
  const MoveOutcome outcome =
      broker.Apply(topo, targets, gains, 9, 0, &partition);
  EXPECT_EQ(outcome.num_moved, 0u);
  EXPECT_EQ(outcome.num_proposals, 0u);
}

TEST(MoveBroker, SymmetricSwapsPreserveSizes) {
  // 50 want 0->1, 50 want 1->0, equal gains: histogram matching should swap
  // most of them (the <1 probability cap holds a few back to prevent
  // whole-bucket relabeling) while keeping sizes balanced.
  const VertexId n = 100;
  std::vector<BucketId> assignment(n);
  for (VertexId v = 0; v < n; ++v) assignment[v] = v < 50 ? 0 : 1;
  Partition partition = Partition::FromAssignment(assignment, 2);
  const MoveTopology topo = MoveTopology::FullK(2, n, 0.1);
  std::vector<BucketId> targets(n);
  std::vector<double> gains(n, 1.0);
  for (VertexId v = 0; v < n; ++v) targets[v] = 1 - assignment[v];
  MoveBrokerOptions options;
  options.use_capacity_slack = false;
  MoveBroker broker(options);
  const MoveOutcome outcome =
      broker.Apply(topo, targets, gains, 9, 0, &partition);
  EXPECT_GT(outcome.num_moved, 70u);
  EXPECT_LE(partition.bucket_size(0), topo.capacity[0]);
  EXPECT_LE(partition.bucket_size(1), topo.capacity[1]);
}

TEST(MoveBroker, MoveBudgetCapsEveryStrategy) {
  // Heavy reciprocal demand: without a budget every strategy moves far more
  // than 40 vertices; with max_moves_per_round = 40 none may exceed it.
  const VertexId n = 400;
  std::vector<BucketId> assignment(n);
  for (VertexId v = 0; v < n; ++v) assignment[v] = v < 200 ? 0 : 1;
  const MoveTopology topo = MoveTopology::FullK(2, n, 0.1);
  std::vector<BucketId> targets(n);
  std::vector<double> gains(n);
  for (VertexId v = 0; v < n; ++v) {
    targets[v] = 1 - assignment[v];
    gains[v] = 1.0 + 0.001 * static_cast<double>(v % 7);
  }
  for (const auto strategy :
       {MoveBrokerOptions::Strategy::kPlainProbability,
        MoveBrokerOptions::Strategy::kHistogramMatching,
        MoveBrokerOptions::Strategy::kExactPairing}) {
    auto run = [&](uint64_t budget) {
      Partition partition = Partition::FromAssignment(assignment, 2);
      MoveBrokerOptions options;
      options.strategy = strategy;
      options.max_moves_per_round = budget;
      MoveBroker broker(options);
      const MoveOutcome outcome =
          broker.Apply(topo, targets, gains, 9, 0, &partition);
      partition.CheckInvariants();
      return outcome;
    };
    const MoveOutcome unlimited = run(0);
    EXPECT_GT(unlimited.num_moved, 40u)
        << "strategy " << static_cast<int>(strategy)
        << ": the budget must actually bind in this test";
    const MoveOutcome capped = run(40);
    EXPECT_LE(capped.num_moved, 40u)
        << "strategy " << static_cast<int>(strategy);
    EXPECT_GT(capped.num_moved, 0u)
        << "strategy " << static_cast<int>(strategy)
        << ": a budget is a cap, not a disable switch";
  }
}

TEST(MoveBroker, MoveBudgetKeepsHighestGains) {
  // Two gain tiers proposing 0 -> 1; the trimmed set must be exactly the
  // high-gain tier (deterministic nth_element with a vertex-id tie-break).
  std::vector<VertexId> movers;
  std::vector<double> gains(100);
  for (VertexId v = 0; v < 100; ++v) {
    movers.push_back(v);
    gains[v] = v % 2 == 0 ? 2.0 : 1.0;
  }
  MoveBroker::TrimToBudget(50, gains, &movers);
  ASSERT_EQ(movers.size(), 50u);
  for (VertexId v : movers) {
    EXPECT_EQ(v % 2, 0) << "low-gain mover survived the trim";
  }
  // Budget 0 means unlimited: nothing trimmed.
  std::vector<VertexId> all(100);
  for (VertexId v = 0; v < 100; ++v) all[v] = v;
  MoveBroker::TrimToBudget(0, gains, &all);
  EXPECT_EQ(all.size(), 100u);
}

TEST(MoveBroker, DrawFloorSkipsDeadRowsWithoutChangingMoves) {
  // One-sided negative demand: every (1 -> 0) histogram bin is negative and
  // nothing proposes (0 -> 1), so the matched probability row is all zero
  // (capacity slack only boosts positive bins). The draw floor must skip
  // every draw — a probability-0 draw can never fire — while the executed
  // moves are identical to the draw-everything reference.
  const VertexId n = 1000;
  std::vector<BucketId> assignment(n);
  for (VertexId v = 0; v < n; ++v) assignment[v] = static_cast<BucketId>(v % 2);
  const MoveTopology topo = MoveTopology::FullK(2, n, 0.05);
  std::vector<BucketId> targets(n, -1);
  std::vector<double> gains(n, 0.0);
  uint64_t proposers = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (assignment[v] == 1) {
      targets[v] = 0;
      gains[v] = -1.0;
      ++proposers;
    }
  }
  auto run = [&](bool skip) {
    Partition partition = Partition::FromAssignment(assignment, 2);
    MoveBrokerOptions options;
    options.skip_zero_probability_pairs = skip;
    MoveBroker broker(options);
    return broker.Apply(topo, targets, gains, 9, 0, &partition);
  };
  const MoveOutcome with_floor = run(true);
  const MoveOutcome reference = run(false);
  EXPECT_EQ(with_floor.moves, reference.moves);
  EXPECT_EQ(with_floor.num_moved, 0u);
  EXPECT_EQ(with_floor.num_proposals, proposers);
  EXPECT_EQ(with_floor.num_draws, 0u) << "all-zero rows must skip the draw";
  EXPECT_EQ(reference.num_draws, proposers)
      << "the reference draws every active proposal";
}

TEST(MoveBroker, DrawFloorKeepsLiveRowsDrawing) {
  // Reciprocal symmetric demand: the (0,1) rows are matched (live), so the
  // draw floor must not skip anything and the trajectory stays identical to
  // the reference for every strategy that draws.
  const VertexId n = 200;
  std::vector<BucketId> assignment(n);
  for (VertexId v = 0; v < n; ++v) assignment[v] = v < 100 ? 0 : 1;
  const MoveTopology topo = MoveTopology::FullK(2, n, 0.1);
  std::vector<BucketId> targets(n);
  std::vector<double> gains(n, 1.0);
  for (VertexId v = 0; v < n; ++v) targets[v] = 1 - assignment[v];
  for (const auto strategy :
       {MoveBrokerOptions::Strategy::kPlainProbability,
        MoveBrokerOptions::Strategy::kHistogramMatching}) {
    auto run = [&](bool skip) {
      Partition partition = Partition::FromAssignment(assignment, 2);
      MoveBrokerOptions options;
      options.strategy = strategy;
      options.skip_zero_probability_pairs = skip;
      MoveBroker broker(options);
      return broker.Apply(topo, targets, gains, 9, 0, &partition);
    };
    const MoveOutcome with_floor = run(true);
    const MoveOutcome reference = run(false);
    EXPECT_EQ(with_floor.moves, reference.moves);
    EXPECT_EQ(with_floor.num_draws, reference.num_draws)
        << "live rows draw on both paths";
    EXPECT_GT(with_floor.num_moved, 0u);
  }
}

TEST(MoveBroker, ChangedListIncrementalMatchesFullRebuild) {
  // Histogram matching with a changed-proposal list must walk the exact same
  // move trajectory as a from-scratch broker: the incremental broker patches
  // its persistent per-pair histograms in O(|changed|), the reference
  // re-accumulates everything each round. The changed list follows the
  // refiner contract — every vertex whose (current bucket, target, gain)
  // differs from the previous Apply is listed, duplicates allowed.
  const VertexId n = 600;
  const BucketId k = 4;
  std::vector<BucketId> assignment(n);
  for (VertexId v = 0; v < n; ++v) assignment[v] = static_cast<BucketId>(v % k);
  const MoveTopology topo = MoveTopology::FullK(k, n, 0.05);
  Partition inc_part = Partition::FromAssignment(assignment, k);
  Partition ref_part = inc_part;

  std::vector<BucketId> targets(n, -1);
  std::vector<double> gains(n, 0.0);
  MoveBrokerOptions options;  // kHistogramMatching default
  MoveBroker incremental(options);

  std::mt19937_64 rng(71);
  std::uniform_real_distribution<double> gain_dist(-1.0, 2.0);
  std::vector<VertexId> changed;
  for (uint64_t round = 0; round < 12; ++round) {
    // Mutate ~10% of the proposals (retargets, gain updates, withdrawals).
    for (int i = 0; i < 60; ++i) {
      const VertexId v = static_cast<VertexId>(rng() % n);
      const BucketId t = static_cast<BucketId>(rng() % k);
      targets[v] =
          (rng() % 5 == 0 || t == inc_part.bucket_of(v)) ? BucketId{-1} : t;
      gains[v] = gain_dist(rng);
      changed.push_back(v);
    }
    // Duplicates must be idempotent.
    changed.push_back(changed.front());
    // The first round has no primed state: the broker must fall back to a
    // full rebuild on its own and prime the incremental path.
    const MoveOutcome inc = incremental.Apply(topo, targets, gains, 9, round,
                                              &inc_part, nullptr, &changed);
    MoveBroker fresh(options);
    const MoveOutcome ref = fresh.Apply(topo, targets, gains, 9, round,
                                        &ref_part, nullptr, nullptr);
    ASSERT_EQ(inc.moves, ref.moves) << "round " << round;
    EXPECT_EQ(inc.num_proposals, ref.num_proposals) << "round " << round;
    EXPECT_EQ(inc.num_moved, ref.num_moved) << "round " << round;
    EXPECT_EQ(inc.num_reverted, ref.num_reverted) << "round " << round;
    EXPECT_DOUBLE_EQ(inc.gain_moved, ref.gain_moved) << "round " << round;

    // Movers changed buckets (and their proposals are spent): list them for
    // the next round, withdrawing the satisfied proposals.
    changed.clear();
    for (const VertexMove& m : inc.moves) {
      targets[m.v] = -1;
      gains[m.v] = 0.0;
      changed.push_back(m.v);
    }
  }
}

TEST(MoveBroker, DampingReducesMovement) {
  const VertexId n = 2000;
  auto run = [n](double damping) {
    Partition partition = Partition::Random(n, 2, 1);
    const MoveTopology topo = MoveTopology::FullK(2, n, 0.05);
    std::vector<BucketId> targets(n);
    std::vector<double> gains(n, 1.0);
    for (VertexId v = 0; v < n; ++v) {
      targets[v] = 1 - partition.bucket_of(v);
    }
    MoveBrokerOptions options;
    options.probability_damping = damping;
    options.use_capacity_slack = false;
    MoveBroker broker(options);
    return broker.Apply(topo, targets, gains, 9, 0, &partition).num_moved;
  };
  EXPECT_LT(run(0.25), run(1.0) / 2);
}

TEST(MoveBroker, ExactPairingSwapsArePerfectlyBalanced) {
  // §3.4 "ideal serial implementation": executed swaps are true pairs, so
  // bucket sizes are exactly preserved (no repair, no expectation argument).
  const VertexId n = 200;
  std::vector<BucketId> assignment(n);
  for (VertexId v = 0; v < n; ++v) assignment[v] = v < 100 ? 0 : 1;
  Partition partition = Partition::FromAssignment(assignment, 2);
  const MoveTopology topo = MoveTopology::FullK(2, n, 0.0);
  std::vector<BucketId> targets(n);
  std::vector<double> gains(n);
  for (VertexId v = 0; v < n; ++v) {
    targets[v] = 1 - assignment[v];
    gains[v] = v % 3 == 0 ? 2.0 : -0.5;  // mix of positive and negative
  }
  MoveBrokerOptions options;
  options.strategy = MoveBrokerOptions::Strategy::kExactPairing;
  options.use_capacity_slack = false;
  MoveBroker broker(options);
  const MoveOutcome outcome =
      broker.Apply(topo, targets, gains, 3, 0, &partition);
  EXPECT_EQ(partition.bucket_size(0), 100u);
  EXPECT_EQ(partition.bucket_size(1), 100u);
  EXPECT_EQ(outcome.num_moved % 2, 0u) << "moves come in pairs";
  EXPECT_GT(outcome.num_moved, 0u);
  EXPECT_EQ(outcome.num_reverted, 0u);
  partition.CheckInvariants();
}

TEST(MoveBroker, ExactPairingHonorsPairSumRule) {
  // A (+1, -8) pair must not swap; a (+8, -1) pair must.
  const VertexId n = 4;
  Partition partition = Partition::FromAssignment({0, 0, 1, 1}, 2);
  const MoveTopology topo = MoveTopology::FullK(2, n, 1.0);
  MoveBrokerOptions options;
  options.strategy = MoveBrokerOptions::Strategy::kExactPairing;
  options.use_capacity_slack = false;
  {
    Partition p = partition;
    const std::vector<BucketId> targets = {1, -1, 0, -1};
    const std::vector<double> gains = {1.0, 0.0, -8.0, 0.0};
    const MoveOutcome outcome =
        MoveBroker(options).Apply(topo, targets, gains, 3, 0, &p);
    EXPECT_EQ(outcome.num_moved, 0u);
  }
  {
    Partition p = partition;
    const std::vector<BucketId> targets = {1, -1, 0, -1};
    const std::vector<double> gains = {8.0, 0.0, -1.0, 0.0};
    const MoveOutcome outcome =
        MoveBroker(options).Apply(topo, targets, gains, 3, 0, &p);
    EXPECT_EQ(outcome.num_moved, 2u);
    EXPECT_EQ(p.bucket_of(0), 1);
    EXPECT_EQ(p.bucket_of(2), 0);
  }
}

TEST(MoveBroker, ExactPairingQualityAtLeastHistogram) {
  // On a small planted instance the exact matcher should reach fanout at
  // least as good as (within noise of) the binned approximation.
  PlantedPartitionConfig config;
  config.num_data = 800;
  config.num_queries = 1600;
  config.num_groups = 4;
  config.mixing = 0.1;
  const PlantedPartition planted = GeneratePlantedPartition(config);
  auto run = [&](MoveBrokerOptions::Strategy strategy) {
    ShpKOptions options;
    options.k = 4;
    options.seed = 5;
    options.refiner.broker.strategy = strategy;
    const ShpResult result = ShpKPartitioner(options).Run(planted.graph);
    return AverageFanout(planted.graph, result.assignment);
  };
  const double exact =
      run(MoveBrokerOptions::Strategy::kExactPairing);
  const double histogram =
      run(MoveBrokerOptions::Strategy::kHistogramMatching);
  EXPECT_LT(exact, histogram * 1.10)
      << "binned matching approximates exact pairing (paper §3.4)";
}

// --------------------------------------------- Fig. 2: local minimum escape
// Instance in the spirit of paper Fig. 2: with direct fanout (p = 1) no
// single move improves the objective, so Algorithm 1 stalls at fanout 2;
// probabilistic fanout (p = 0.5) has positive single-move gains and the
// optimizer escapes to the optimum 4/3.
BipartiteGraph Fig2LikeGraph() {
  GraphBuilder b;
  b.AddHyperedge(0, {0, 1, 4, 5});  // q1
  b.AddHyperedge(1, {2, 3, 4, 5});  // q2
  b.AddHyperedge(2, {2, 3, 6, 7});  // q3
  return b.Build();
}

TEST(LocalMinimum, DirectFanoutIsStuck) {
  const BipartiteGraph g = Fig2LikeGraph();
  const std::vector<BucketId> start = {0, 0, 0, 0, 1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(AverageFanout(g, start), 2.0);

  ShpKOptions options;
  options.k = 2;
  options.p = 1.0;  // direct fanout optimization
  options.seed = 4;
  options.refiner.exploration_probability = 0.0;  // Algorithm 1 verbatim
  options.refiner.propose_nonpositive = false;
  options.refiner.broker.strategy =
      MoveBrokerOptions::Strategy::kPlainProbability;
  const ShpResult result =
      ShpKPartitioner(options).RunFrom(g, start);
  EXPECT_DOUBLE_EQ(AverageFanout(g, result.assignment), 2.0)
      << "no single move improves fanout (paper Fig. 2)";
}

TEST(LocalMinimum, ProbabilisticFanoutEscapes) {
  const BipartiteGraph g = Fig2LikeGraph();
  const std::vector<BucketId> start = {0, 0, 0, 0, 1, 1, 1, 1};
  ShpKOptions options;
  options.k = 2;
  options.p = 0.5;
  options.seed = 4;
  options.max_iterations = 40;
  const ShpResult result = ShpKPartitioner(options).RunFrom(g, start);
  EXPECT_NEAR(AverageFanout(g, result.assignment), 4.0 / 3.0, 1e-9)
      << "p-fanout has positive single-move gains here; optimum is 4/3";
}

}  // namespace
}  // namespace shp
