// Objective tests: the paper's worked Fig. 1 example, p-fanout limit lemmas
// (numerically), relations among fanout/SOED/cut/clique-net, neighbor data
// and gain correctness against brute force.
#include <gtest/gtest.h>

#include <cmath>

#include "core/partition.h"
#include "graph/gen_powerlaw.h"
#include "graph/graph_builder.h"
#include "objective/gain.h"
#include "objective/neighbor_data.h"
#include "objective/objective.h"
#include "objective/pow_table.h"

namespace shp {
namespace {

BipartiteGraph Fig1Graph() {
  // Queries {1,2,6}, {1,2,3,4}, {4,5,6} over data 1..6 (0-indexed).
  GraphBuilder b;
  b.AddHyperedge(0, {0, 1, 5});
  b.AddHyperedge(1, {0, 1, 2, 3});
  b.AddHyperedge(2, {3, 4, 5});
  return b.Build();
}

// V1 = {1,2,3}, V2 = {4,5,6} (paper Fig. 1 caption).
const std::vector<BucketId> kFig1Assignment = {0, 0, 0, 1, 1, 1};

TEST(Fanout, PaperFigure1Example) {
  const BipartiteGraph g = Fig1Graph();
  // "fanout of the queries is 2, 2, and 1, respectively."
  const auto histogram = FanoutHistogram(g, kFig1Assignment);
  ASSERT_GE(histogram.size(), 3u);
  EXPECT_EQ(histogram[1], 1u);
  EXPECT_EQ(histogram[2], 2u);
  EXPECT_NEAR(AverageFanout(g, kFig1Assignment), 5.0 / 3.0, 1e-12);
}

TEST(Fanout, SingleBucketIsAlwaysOne) {
  const BipartiteGraph g = Fig1Graph();
  const std::vector<BucketId> all_zero(6, 0);
  EXPECT_DOUBLE_EQ(AverageFanout(g, all_zero), 1.0);
  EXPECT_EQ(HyperedgeCut(g, all_zero), 0u);
  EXPECT_EQ(CliqueNetCut(g, all_zero), 0u);
}

TEST(PFanout, IsAtMostFanout) {
  // "p-fanout(q) is less than or equal to fanout(q) for all q" (§3.1).
  const BipartiteGraph g = Fig1Graph();
  for (double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    EXPECT_LE(AveragePFanout(g, kFig1Assignment, p),
              AverageFanout(g, kFig1Assignment) + 1e-12);
  }
}

TEST(PFanout, HandComputedValue) {
  const BipartiteGraph g = Fig1Graph();
  // q0 = {0,1,5}: n = (2,1); q1 = {0,1,2,3}: n = (3,1); q2 = {3,4,5}: (0,3).
  const double p = 0.5;
  const double expected = ((1 - std::pow(0.5, 2)) + (1 - std::pow(0.5, 1)) +
                           (1 - std::pow(0.5, 3)) + (1 - std::pow(0.5, 1)) +
                           (1 - std::pow(0.5, 3))) /
                          3.0;
  EXPECT_NEAR(AveragePFanout(g, kFig1Assignment, p), expected, 1e-12);
}

TEST(PFanout, Lemma1LimitRecoversFanout) {
  // Minimizing p-fanout as p -> 1 is fanout minimization: numerically,
  // p-fanout at p = 1 equals fanout exactly (0^n = 0 for n > 0).
  const BipartiteGraph g = Fig1Graph();
  EXPECT_NEAR(AveragePFanout(g, kFig1Assignment, 1.0),
              AverageFanout(g, kFig1Assignment), 1e-12);
}

TEST(PFanout, Lemma2SmallPOrdersLikeCliqueNet) {
  // As p -> 0, p-fanout ranks partitions like the clique-net edge-cut: for
  // random assignments of a random hypergraph, the ordering by tiny-p
  // p-fanout must agree with ordering by CliqueNetCut.
  PowerLawConfig config;
  config.num_queries = 200;
  config.num_data = 120;
  config.target_edges = 900;
  const BipartiteGraph g = GeneratePowerLaw(config);
  const double p = 1e-4;
  for (uint64_t seed = 0; seed < 6; seed += 2) {
    const auto a = Partition::Random(g.num_data(), 4, seed).assignment();
    const auto b = Partition::Random(g.num_data(), 4, seed + 1).assignment();
    const double pf_a = AveragePFanout(g, a, p);
    const double pf_b = AveragePFanout(g, b, p);
    const uint64_t cut_a = CliqueNetCut(g, a);
    const uint64_t cut_b = CliqueNetCut(g, b);
    if (cut_a == cut_b) continue;
    EXPECT_EQ(pf_a < pf_b, cut_a < cut_b)
        << "tiny-p ordering must match clique-net ordering (seed " << seed
        << ")";
  }
}

TEST(Objective, SoedEqualsFanoutPlusCut) {
  // Paper footnote 2: SOED = unnormalized fanout + hyperedge cut.
  const BipartiteGraph g = Fig1Graph();
  const uint64_t soed = SumExternalDegrees(g, kFig1Assignment);
  const double fanout = AverageFanout(g, kFig1Assignment);
  const uint64_t cut = HyperedgeCut(g, kFig1Assignment);
  EXPECT_EQ(soed, static_cast<uint64_t>(std::llround(
                      fanout * g.num_queries())) +
                      cut);
}

TEST(Objective, CliqueNetCutHandValue) {
  const BipartiteGraph g = Fig1Graph();
  // q0 (2,1): pairs cut = (3²-2²-1²)/2 = 2; q1 (3,1): (16-9-1)/2 = 3;
  // q2 (3,0): 0. Total 5.
  EXPECT_EQ(CliqueNetCut(g, kFig1Assignment), 5u);
}

TEST(Objective, KindNames) {
  EXPECT_STREQ(ObjectiveKindName(ObjectiveKind::kPFanout), "p-fanout");
  EXPECT_STREQ(ObjectiveKindName(ObjectiveKind::kFanout), "fanout");
  EXPECT_STREQ(ObjectiveKindName(ObjectiveKind::kCliqueNet), "clique-net");
}

// --------------------------------------------------------------- PowTable
TEST(PowTable, MatchesStdPow) {
  const PowTable table(0.5, 64);
  for (uint32_t n = 0; n <= 64; ++n) {
    EXPECT_NEAR(table.Pow(n), std::pow(0.5, n), 1e-15);
  }
  // Beyond the table: fallback.
  EXPECT_NEAR(table.Pow(100), std::pow(0.5, 100), 1e-30);
}

TEST(PowTable, EdgeBases) {
  const PowTable zero(0.0, 8);
  EXPECT_DOUBLE_EQ(zero.Pow(0), 1.0);
  EXPECT_DOUBLE_EQ(zero.Pow(3), 0.0);
  const PowTable one(1.0, 8);
  EXPECT_DOUBLE_EQ(one.Pow(7), 1.0);
}

// ----------------------------------------------------------- NeighborData
TEST(NeighborData, MatchesBruteForceCounts) {
  const BipartiteGraph g = Fig1Graph();
  QueryNeighborData ndata;
  ndata.Build(g, kFig1Assignment);
  EXPECT_EQ(ndata.CountFor(0, 0), 2u);  // q0: data {0,1} in bucket 0
  EXPECT_EQ(ndata.CountFor(0, 1), 1u);  // data {5} in bucket 1
  EXPECT_EQ(ndata.CountFor(1, 0), 3u);
  EXPECT_EQ(ndata.CountFor(1, 1), 1u);
  EXPECT_EQ(ndata.CountFor(2, 0), 0u);
  EXPECT_EQ(ndata.CountFor(2, 1), 3u);
  EXPECT_EQ(ndata.Fanout(0), 2u);
  EXPECT_EQ(ndata.Fanout(2), 1u);
  EXPECT_EQ(ndata.TotalEntries(), 5u);  // Σ fanout(q) = 2+2+1
}

TEST(NeighborData, ApplyMoveKeepsCountsConsistent) {
  const BipartiteGraph g = Fig1Graph();
  std::vector<BucketId> assignment = kFig1Assignment;
  QueryNeighborData ndata;
  ndata.Build(g, assignment);

  ndata.ApplyMove(g, /*v=*/3, /*from=*/1, /*to=*/0);
  assignment[3] = 0;
  QueryNeighborData fresh;
  fresh.Build(g, assignment);
  for (VertexId q = 0; q < g.num_queries(); ++q) {
    for (BucketId b = 0; b < 2; ++b) {
      EXPECT_EQ(ndata.CountFor(q, b), fresh.CountFor(q, b))
          << "q=" << q << " b=" << b;
    }
  }
}

TEST(NeighborData, ApplyMoveCreatingAndEmptyingBuckets) {
  const BipartiteGraph g = Fig1Graph();
  std::vector<BucketId> assignment = {0, 0, 0, 0, 0, 0};
  QueryNeighborData ndata;
  ndata.Build(g, assignment);
  ndata.ApplyMove(g, 5, 0, 2);  // bucket 2 appears for q0 and q2
  EXPECT_EQ(ndata.CountFor(0, 2), 1u);
  EXPECT_EQ(ndata.CountFor(2, 2), 1u);
  ndata.ApplyMove(g, 5, 2, 0);  // and disappears again
  EXPECT_EQ(ndata.CountFor(0, 2), 0u);
  EXPECT_EQ(ndata.Fanout(0), 1u);
}

// ------------------------------------------------------------------ Gain
// Brute-force objective delta: p-fanout(before) - p-fanout(after).
double BruteForceGain(const BipartiteGraph& g, std::vector<BucketId> assign,
                      VertexId v, BucketId to, double p) {
  const double before =
      AveragePFanout(g, assign, p) * g.num_queries();
  assign[v] = to;
  const double after = AveragePFanout(g, assign, p) * g.num_queries();
  return before - after;
}

TEST(Gain, MoveGainEqualsObjectiveDelta) {
  const BipartiteGraph g = Fig1Graph();
  QueryNeighborData ndata;
  ndata.Build(g, kFig1Assignment);
  const GainComputer gain(0.5, static_cast<uint32_t>(g.MaxQueryDegree()));
  for (VertexId v = 0; v < g.num_data(); ++v) {
    for (BucketId to = 0; to < 2; ++to) {
      const BucketId from = kFig1Assignment[v];
      if (to == from) continue;
      EXPECT_NEAR(gain.MoveGain(g, ndata, v, from, to),
                  BruteForceGain(g, kFig1Assignment, v, to, 0.5), 1e-12)
          << "v=" << v << " to=" << to;
    }
  }
}

class GainProperty : public testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(GainProperty, GainMatchesDeltaOnRandomGraphs) {
  const double p = std::get<0>(GetParam());
  const int k = std::get<1>(GetParam());
  PowerLawConfig config;
  config.num_queries = 150;
  config.num_data = 100;
  config.target_edges = 700;
  config.seed = 77 + k;
  const BipartiteGraph g = GeneratePowerLaw(config);
  const auto assignment =
      Partition::Random(g.num_data(), k, 5).assignment();
  QueryNeighborData ndata;
  ndata.Build(g, assignment);
  const GainComputer gain(p, static_cast<uint32_t>(g.MaxQueryDegree()));
  for (VertexId v = 0; v < g.num_data(); v += 7) {
    const BucketId from = assignment[v];
    const BucketId to = (from + 1) % k;
    EXPECT_NEAR(gain.MoveGain(g, ndata, v, from, to),
                BruteForceGain(g, assignment, v, to, p), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GainProperty,
                         testing::Combine(testing::Values(0.1, 0.5, 0.9, 1.0),
                                          testing::Values(2, 4, 16)));

TEST(Gain, FindBestTargetMatchesBruteForce) {
  PowerLawConfig config;
  config.num_queries = 200;
  config.num_data = 150;
  config.target_edges = 900;
  const BipartiteGraph g = GeneratePowerLaw(config);
  const BucketId k = 8;
  const auto assignment = Partition::Random(g.num_data(), k, 2).assignment();
  QueryNeighborData ndata;
  ndata.Build(g, assignment);
  const GainComputer gain(0.5, static_cast<uint32_t>(g.MaxQueryDegree()));
  std::vector<double> affinity(static_cast<size_t>(k), 0.0);
  std::vector<BucketId> touched;
  for (VertexId v = 0; v < g.num_data(); ++v) {
    if (g.DataDegree(v) == 0) continue;
    const BucketId from = assignment[v];
    const auto best =
        gain.FindBestTarget(g, ndata, v, from, 0, k, &affinity, &touched);
    double brute_best = -1e300;
    for (BucketId b = 0; b < k; ++b) {
      if (b == from) continue;
      brute_best =
          std::max(brute_best, gain.MoveGain(g, ndata, v, from, b));
    }
    ASSERT_NE(best.bucket, -1);
    EXPECT_NE(best.bucket, from);
    EXPECT_NEAR(best.gain, brute_best, 1e-9) << "v=" << v;
  }
}

TEST(Gain, FutureSplitGeneralizesPlainGain) {
  // t = 1 must equal the plain gain; t > 1 must equal the projected-final
  // objective delta computed by hand: gain = p Σ ((1-p/t)^{n_i-1} -
  // (1-p/t)^{n_j}).
  const BipartiteGraph g = Fig1Graph();
  QueryNeighborData ndata;
  ndata.Build(g, kFig1Assignment);
  const uint32_t maxdeg = static_cast<uint32_t>(g.MaxQueryDegree());
  const GainComputer plain(0.5, maxdeg, 1);
  const GainComputer projected(0.5, maxdeg, 4);
  EXPECT_DOUBLE_EQ(plain.pow_base(), 0.5);
  EXPECT_DOUBLE_EQ(projected.pow_base(), 1.0 - 0.5 / 4);
  // Hand value for v=3 (bucket 1 -> 0): adjacent queries q1 (n0=3, n1=1)
  // and q2 (n0=0, n1=3).
  const double base = 1.0 - 0.5 / 4;
  const double expected =
      0.5 * ((std::pow(base, 0) - std::pow(base, 3)) +
             (std::pow(base, 2) - std::pow(base, 0)));
  EXPECT_NEAR(projected.MoveGain(g, ndata, 3, 1, 0), expected, 1e-12);
}

}  // namespace
}  // namespace shp
