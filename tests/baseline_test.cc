// Baseline partitioner tests: random/hash/label-prop invariants, clique-net
// expansion weights, coarsening conservation, FM refinement, and the
// multilevel driver including its memory-budget failure mode.
#include <gtest/gtest.h>

#include "baseline/clique_net.h"
#include "baseline/coarsener.h"
#include "baseline/fm_refiner.h"
#include "baseline/hash_partitioner.h"
#include "baseline/label_propagation.h"
#include "baseline/multilevel.h"
#include "baseline/random_partitioner.h"
#include "core/partition.h"
#include "graph/gen_planted.h"
#include "graph/gen_social.h"
#include "graph/graph_builder.h"
#include "objective/objective.h"

namespace shp {
namespace {

BipartiteGraph SmallSocial(uint64_t seed = 8) {
  SocialGraphConfig config;
  config.num_users = 1000;
  config.avg_degree = 8;
  config.seed = seed;
  return GenerateSocialGraph(config);
}

TEST(RandomBaseline, BalancedAndInRange) {
  const BipartiteGraph g = SmallSocial();
  auto result = MakeRandomPartitioner({})->Partition(g, 10, nullptr);
  ASSERT_TRUE(result.ok());
  const auto partition = Partition::FromAssignment(result.value(), 10);
  EXPECT_LT(partition.ImbalanceRatio(), 0.2);
}

TEST(HashBaseline, DeterministicAndBalanced) {
  const BipartiteGraph g = SmallSocial();
  auto a = MakeHashPartitioner(1)->Partition(g, 8, nullptr).value();
  auto b = MakeHashPartitioner(1)->Partition(g, 8, nullptr).value();
  EXPECT_EQ(a, b);
  auto c = MakeHashPartitioner(2)->Partition(g, 8, nullptr).value();
  EXPECT_NE(a, c);
}

TEST(LabelProp, ImprovesOverRandomAndRespectsCapacity) {
  const BipartiteGraph g = SmallSocial();
  const BucketId k = 8;
  auto result = MakeLabelPropagation({})->Partition(g, k, nullptr);
  ASSERT_TRUE(result.ok());
  const double lp_fanout = AverageFanout(g, result.value());
  const double random_fanout =
      AverageFanout(g, Partition::Random(g.num_data(), k, 4).assignment());
  EXPECT_LT(lp_fanout, random_fanout);
  EXPECT_TRUE(Partition::FromAssignment(result.value(), k).IsBalanced(0.06));
}

// ------------------------------------------------------------- CliqueNet
TEST(CliqueNet, WeightsCountSharedQueries) {
  // Two queries both containing {0,1}: w(0,1) = 2 (Lemma 2's w(u,v)).
  GraphBuilder b;
  b.AddHyperedge(0, {0, 1});
  b.AddHyperedge(1, {0, 1, 2});
  const WeightedGraph clique = BuildCliqueNet(b.Build());
  ASSERT_EQ(clique.num_vertices(), 3u);
  // Find edge 0-1.
  uint32_t w01 = 0;
  for (uint64_t e = clique.offsets[0]; e < clique.offsets[1]; ++e) {
    if (clique.adjacency[e] == 1) w01 = clique.weights[e];
  }
  EXPECT_EQ(w01, 2u);
}

TEST(CliqueNet, SymmetricAdjacency) {
  const BipartiteGraph g = SmallSocial();
  const WeightedGraph clique = BuildCliqueNet(g);
  EXPECT_EQ(clique.num_edges() % 2, 0u);
  // Spot check symmetry on vertex 0's neighbors.
  for (uint64_t e = clique.offsets[0]; e < clique.offsets[1]; ++e) {
    const VertexId v = clique.adjacency[e];
    bool found = false;
    for (uint64_t f = clique.offsets[v]; f < clique.offsets[v + 1]; ++f) {
      if (clique.adjacency[f] == 0) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST(CliqueNet, LargeHyperedgesAreSampled) {
  GraphBuilder b;
  std::vector<VertexId> big;
  for (VertexId v = 0; v < 100; ++v) big.push_back(v);
  b.AddHyperedge(0, big);
  CliqueNetOptions options;
  options.max_clique_degree = 32;
  const WeightedGraph clique = BuildCliqueNet(b.Build(), options);
  // Full expansion would be 100·99 directed edges; sampling keeps ≤ 4·d.
  EXPECT_LT(clique.num_edges(), 100u * 99u / 4);
  EXPECT_GT(clique.num_edges(), 0u);
}

// -------------------------------------------------------------- Coarsener
TEST(Coarsener, PreservesTotalVertexWeight) {
  const BipartiteGraph g = SmallSocial();
  const CoarseLevel level = CoarsenOnce(g, {}, {});
  uint64_t total = 0;
  for (uint32_t w : level.vertex_weight) total += w;
  EXPECT_EQ(total, g.num_data());
  EXPECT_LT(level.graph.num_data(), g.num_data());
  EXPECT_GE(level.graph.num_data(), g.num_data() / 2);
}

TEST(Coarsener, MappingIsSurjective) {
  const BipartiteGraph g = SmallSocial();
  const CoarseLevel level = CoarsenOnce(g, {}, {});
  std::vector<bool> hit(level.graph.num_data(), false);
  for (VertexId c : level.fine_to_coarse) {
    ASSERT_LT(c, level.vertex_weight.size());
    if (c < level.graph.num_data()) hit[c] = true;
  }
  // Every coarse vertex that appears in the coarse graph has a preimage.
  for (size_t i = 0; i < hit.size(); ++i) EXPECT_TRUE(hit[i]) << i;
}

TEST(Coarsener, ModeledFullBytesExceedsSampled) {
  SocialGraphConfig config;
  config.num_users = 500;
  config.avg_degree = 30;  // dense: full expansion blows up quadratically
  const BipartiteGraph g = GenerateSocialGraph(config);
  const CoarseLevel level = CoarsenOnce(g, {}, {});
  EXPECT_GT(level.modeled_full_bytes, level.memory_bytes);
}

// ------------------------------------------------------------------- FM
TEST(Fm, NeverWorsensAndRespectsBalance) {
  const BipartiteGraph g = SmallSocial();
  std::vector<int8_t> side(g.num_data());
  for (VertexId v = 0; v < g.num_data(); ++v) {
    side[v] = static_cast<int8_t>(v % 2);
  }
  std::vector<BucketId> before(side.begin(), side.end());
  const double fanout_before = AverageFanout(g, before);
  const int64_t improvement = FmRefineBisection(g, {}, {}, &side);
  EXPECT_GE(improvement, 0);
  std::vector<BucketId> after(side.begin(), side.end());
  const double fanout_after = AverageFanout(g, after);
  EXPECT_LE(fanout_after, fanout_before + 1e-9);
  // Balance: ±5% around half.
  uint64_t left = 0;
  for (int8_t s : side) left += s == 0;
  EXPECT_LT(std::abs(static_cast<double>(left) / g.num_data() - 0.5), 0.06);
}

TEST(Fm, ImprovementMatchesObjectiveDelta) {
  const BipartiteGraph g = SmallSocial(11);
  std::vector<int8_t> side(g.num_data());
  for (VertexId v = 0; v < g.num_data(); ++v) {
    side[v] = static_cast<int8_t>((v / 3) % 2);
  }
  std::vector<BucketId> before(side.begin(), side.end());
  const double unnorm_before = AverageFanout(g, before) * g.num_queries();
  const int64_t claimed = FmRefineBisection(g, {}, {}, &side);
  std::vector<BucketId> after(side.begin(), side.end());
  const double unnorm_after = AverageFanout(g, after) * g.num_queries();
  EXPECT_NEAR(unnorm_before - unnorm_after, static_cast<double>(claimed),
              0.5);
}

TEST(Fm, AsymmetricTargetFraction) {
  const BipartiteGraph g = SmallSocial(13);
  std::vector<int8_t> side(g.num_data(), 0);
  FmOptions options;
  options.target_left_fraction = 2.0 / 3.0;
  // Start from all-left; FM can only move within balance ceilings, so side
  // 1 may not exceed (1+ε)/3 of the weight.
  FmRefineBisection(g, {}, options, &side);
  uint64_t right = 0;
  for (int8_t s : side) right += s == 1;
  EXPECT_LE(static_cast<double>(right) / g.num_data(),
            (1.0 + options.epsilon) / 3.0 + 0.01);
}

// ------------------------------------------------------------ Multilevel
TEST(Multilevel, ProducesBalancedKWay) {
  const BipartiteGraph g = SmallSocial();
  for (BucketId k : {2, 4, 8}) {
    auto result = MakeMultilevelPartitioner({})->Partition(g, k, nullptr);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const auto partition = Partition::FromAssignment(result.value(), k);
    EXPECT_TRUE(partition.IsBalanced(0.15))
        << "k=" << k << " imbalance " << partition.ImbalanceRatio();
  }
}

TEST(Multilevel, BeatsRandomClearly) {
  PlantedPartitionConfig config;
  config.num_data = 1000;
  config.num_queries = 2500;
  config.num_groups = 4;
  config.mixing = 0.05;
  const PlantedPartition planted = GeneratePlantedPartition(config);
  auto result =
      MakeMultilevelPartitioner({})->Partition(planted.graph, 4, nullptr);
  ASSERT_TRUE(result.ok());
  const double ml = AverageFanout(planted.graph, result.value());
  const double random = AverageFanout(
      planted.graph,
      Partition::Random(planted.graph.num_data(), 4, 5).assignment());
  EXPECT_LT(ml, random * 0.75);
}

TEST(Multilevel, FailsWhenBudgetExceeded) {
  const BipartiteGraph g = SmallSocial();
  MultilevelOptions options;
  options.memory_budget_bytes = 1024;  // absurdly small
  auto result = MakeMultilevelPartitioner(options)->Partition(g, 4, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange)
      << "mirrors the Zoltan/Parkway OOM failures of paper §4.2.3";
}

TEST(Multilevel, MemoryEstimatePositiveAndMonotone) {
  const BipartiteGraph small = SmallSocial(1);
  SocialGraphConfig big_config;
  big_config.num_users = 3000;
  big_config.avg_degree = 8;
  const BipartiteGraph big = GenerateSocialGraph(big_config);
  const uint64_t small_mem = EstimateMultilevelMemory(small, {});
  const uint64_t big_mem = EstimateMultilevelMemory(big, {});
  EXPECT_GT(small_mem, 0u);
  EXPECT_GT(big_mem, small_mem);
}

TEST(Multilevel, RejectsKBelowTwo) {
  const BipartiteGraph g = SmallSocial();
  EXPECT_FALSE(MakeMultilevelPartitioner({})->Partition(g, 1, nullptr).ok());
}

}  // namespace
}  // namespace shp
