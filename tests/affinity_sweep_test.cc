// Query-major affinity sweep tests: NeighborDelta emission from ApplyMoves
// (record chains vs before/after CountFor diffs), accumulator build/patch
// equivalence with a fresh query-major pass, deterministic-mode thread-count
// independence, pull-vs-push best-target consistency (tie-breaks, restricted
// windows, empty-window fallback), and the refiner-level pull-vs-push
// tolerance harness across all three MoveBroker strategies.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/move_broker.h"
#include "core/move_topology.h"
#include "core/partition.h"
#include "core/refiner.h"
#include "graph/gen_powerlaw.h"
#include "graph/gen_social.h"
#include "graph/graph_builder.h"
#include "objective/affinity_sweep.h"
#include "objective/gain.h"
#include "objective/neighbor_data.h"
#include "objective/objective.h"
#include "objective/pow_table.h"

namespace shp {
namespace {

BipartiteGraph TestGraph(uint64_t seed = 3) {
  PowerLawConfig config;
  config.num_queries = 300;
  config.num_data = 200;
  config.target_edges = 1400;
  config.seed = seed;
  return GeneratePowerLaw(config);
}

/// Draws a random batch of distinct-vertex moves and mutates `assignment`.
std::vector<VertexMove> RandomBatch(std::vector<BucketId>* assignment,
                                    BucketId k, uint64_t seed, uint64_t round,
                                    size_t batch_size) {
  std::vector<VertexMove> moves;
  const VertexId n = static_cast<VertexId>(assignment->size());
  for (size_t i = 0; i < batch_size; ++i) {
    const VertexId v = static_cast<VertexId>(
        HashToBounded(seed ^ 0xbeef, round, i, n));
    const BucketId from = (*assignment)[v];
    bool duplicate = false;
    for (const VertexMove& m : moves) duplicate |= m.v == v;
    if (duplicate) continue;
    const BucketId to = static_cast<BucketId>(
        HashToBounded(seed ^ 0xf00d, round, i + 1000, static_cast<uint64_t>(k)));
    if (to == from) continue;
    moves.push_back({v, from, to});
    (*assignment)[v] = to;
  }
  return moves;
}

uint64_t PackQB(VertexId q, BucketId b) {
  return (static_cast<uint64_t>(q) << 32) | static_cast<uint32_t>(b);
}

// ------------------------------------------------------- delta emission API
TEST(DeltaEmission, RecordsChainFromBeforeToAfterCounts) {
  const BipartiteGraph g = TestGraph();
  const BucketId k = 8;
  std::vector<BucketId> assignment =
      Partition::Random(g.num_data(), k, 11).assignment();
  QueryNeighborData ndata;
  ndata.Build(g, assignment);

  for (uint64_t round = 0; round < 30; ++round) {
    // Replay the records over a snapshot of the before-counts: each record's
    // old_count must match the tracked value (the chains are emitted in
    // order per (q, bucket)), and the replayed state must equal the after-
    // counts exactly — no transition lost, none fabricated.
    std::unordered_map<uint64_t, uint32_t> tracked;
    for (VertexId q = 0; q < g.num_queries(); ++q) {
      for (const BucketCount& e : ndata.Entries(q)) {
        tracked[PackQB(q, e.bucket)] = e.count;
      }
    }

    const size_t batch =
        1 + static_cast<size_t>(HashToBounded(99, round, 0, 40));
    const std::vector<VertexMove> moves =
        RandomBatch(&assignment, k, 17, round, batch);
    std::vector<NeighborDelta> deltas;
    ndata.ApplyMoves(g, moves, nullptr, nullptr, &deltas);

    for (const NeighborDelta& rec : deltas) {
      ASSERT_TRUE(rec.new_count == rec.old_count + 1 ||
                  rec.new_count + 1 == rec.old_count)
          << "records are unit transitions";
      const uint64_t key = PackQB(rec.q, rec.bucket);
      const auto it = tracked.find(key);
      const uint32_t current = it == tracked.end() ? 0 : it->second;
      ASSERT_EQ(current, rec.old_count)
          << "round " << round << " q=" << rec.q << " b=" << rec.bucket;
      tracked[key] = rec.new_count;
    }
    for (VertexId q = 0; q < g.num_queries(); ++q) {
      for (BucketId b = 0; b < k; ++b) {
        const auto it = tracked.find(PackQB(q, b));
        const uint32_t replayed = it == tracked.end() ? 0 : it->second;
        ASSERT_EQ(replayed, ndata.CountFor(q, b))
            << "round " << round << " q=" << q << " b=" << b;
      }
    }
  }
}

TEST(DeltaEmission, UntouchedQueriesEmitNothing) {
  const BipartiteGraph g = TestGraph(5);
  const BucketId k = 4;
  std::vector<BucketId> assignment =
      Partition::Random(g.num_data(), k, 7).assignment();
  QueryNeighborData ndata;
  ndata.Build(g, assignment);

  const VertexId v = 0;
  const BucketId from = assignment[v];
  const BucketId to = (from + 1) % k;
  const VertexMove move{v, from, to};
  std::vector<NeighborDelta> deltas;
  ndata.ApplyMoves(g, {&move, 1}, nullptr, nullptr, &deltas);

  const auto nbrs = g.DataNeighbors(v);
  for (const NeighborDelta& rec : deltas) {
    EXPECT_TRUE(std::binary_search(nbrs.begin(), nbrs.end(), rec.q))
        << "delta for a query not adjacent to the moved vertex";
    EXPECT_TRUE(rec.bucket == from || rec.bucket == to);
  }
  // Exactly two records (one per touched bucket) per adjacent query.
  EXPECT_EQ(deltas.size(), 2 * nbrs.size());
}

// ------------------------------------------------------ accumulator content
TEST(AffinitySweep, BuildMatchesBruteForce) {
  const BipartiteGraph g = TestGraph(9);
  const BucketId k = 8;
  const double p = 0.5;
  const auto assignment = Partition::Random(g.num_data(), k, 3).assignment();
  QueryNeighborData ndata;
  ndata.Build(g, assignment);
  const PowTable pow(1.0 - p, static_cast<uint32_t>(g.MaxQueryDegree()) + 2);

  AffinitySweep sweep;
  sweep.Build(g, ndata, pow);

  for (VertexId v = 0; v < g.num_data(); ++v) {
    for (BucketId b = 0; b < k; ++b) {
      double expected = 0.0;
      uint32_t support = 0;
      for (VertexId q : g.DataNeighbors(v)) {
        const uint32_t c = ndata.CountFor(q, b);
        if (c == 0) continue;
        ++support;
        expected += 1.0 - pow.Pow(c);
      }
      EXPECT_NEAR(sweep.AffinityFor(v, b), expected, 1e-12)
          << "v=" << v << " b=" << b;
      const auto entries = sweep.Entries(v);
      const auto it = std::find_if(
          entries.begin(), entries.end(),
          [b](const AffinityEntry& e) { return e.bucket == b; });
      EXPECT_EQ(it == entries.end() ? 0u : it->support, support);
    }
  }
}

TEST(AffinitySweep, ApplyDeltasMatchesFreshBuild) {
  const BipartiteGraph g = TestGraph(13);
  const BucketId k = 16;
  const double p = 0.5;
  // Start fully concentrated so early batches constantly occupy new buckets
  // and exercise slack growth, overflow relocation, and entry removal.
  std::vector<BucketId> assignment(g.num_data(), 0);
  QueryNeighborData ndata;
  ndata.Build(g, assignment);
  const PowTable pow(1.0 - p, static_cast<uint32_t>(g.MaxQueryDegree()) + 2);

  AffinitySweep sweep;
  sweep.Build(g, ndata, pow);
  for (uint64_t round = 0; round < 40; ++round) {
    const std::vector<VertexMove> moves =
        RandomBatch(&assignment, k, 23, round, 25);
    std::vector<NeighborDelta> deltas;
    ndata.ApplyMoves(g, moves, nullptr, nullptr, &deltas);
    sweep.ApplyDeltas(g, deltas, pow);

    AffinitySweep fresh;
    fresh.Build(g, ndata, pow);
    ASSERT_TRUE(sweep.ApproxEquals(fresh, 1e-9, 1e-9)) << "round " << round;
    ASSERT_EQ(sweep.TotalEntries(), fresh.TotalEntries()) << "round " << round;
  }

  // Compaction preserves content and drops relocation garbage.
  const uint64_t before = sweep.ArenaSlots();
  sweep.Compact();
  AffinitySweep fresh;
  fresh.Build(g, ndata, pow);
  EXPECT_TRUE(sweep.ApproxEquals(fresh, 1e-9, 1e-9));
  EXPECT_LE(sweep.ArenaSlots(), before);
  EXPECT_EQ(sweep.ArenaSlots(), fresh.ArenaSlots());
}

TEST(AffinitySweepSharded, BuildShardedMatchesUnshardedBuild) {
  // The owner-sharded build (BSP hash placement) merges each vertex's
  // contributions in the same ascending query order as the contiguous-range
  // Build, so the accumulators are bit-identical — only the ownership
  // filter differs.
  const BipartiteGraph g = TestGraph(17);
  const BucketId k = 8;
  const double p = 0.5;
  const PowTable pow(1.0 - p, static_cast<uint32_t>(g.MaxQueryDegree()) + 2);
  const std::vector<BucketId> assignment =
      Partition::Random(g.num_data(), k, 3).assignment();
  QueryNeighborData ndata;
  ndata.Build(g, assignment);

  AffinitySweep base;
  base.Build(g, ndata, pow);
  const int num_shards = 3;
  std::vector<int32_t> owner(g.num_data());
  for (VertexId v = 0; v < g.num_data(); ++v) {
    owner[v] = static_cast<int32_t>(HashToBounded(77, v, 1, num_shards));
  }
  AffinitySweep sharded;
  const std::vector<uint64_t> work = sharded.BuildSharded(
      g, [&](VertexId q) { return ndata.Entries(q); }, pow, owner, num_shards);
  ASSERT_EQ(work.size(), static_cast<size_t>(num_shards));
  EXPECT_GT(work[0] + work[1] + work[2], 0u);
  EXPECT_EQ(sharded.TotalEntries(), base.TotalEntries());
  for (VertexId v = 0; v < g.num_data(); ++v) {
    const auto a = base.Entries(v);
    const auto b = sharded.Entries(v);
    ASSERT_EQ(a.size(), b.size()) << "v=" << v;
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "v=" << v << " i=" << i;
    }
  }
}

TEST(AffinitySweepSharded, BootstrapReadsAdjacencyExactlyOnceForAnyShardCount) {
  // The one-pass bootstrap bins pins by owner shard and merges per shard —
  // each (query, data-neighbor) pin is read exactly once, so the adjacency
  // read counter must equal num_edges() for every worker count W (the old
  // layout streamed the full adjacency once PER shard: W × |E|). Accumulator
  // content must stay identical across W.
  const BipartiteGraph g = TestGraph(23);
  const BucketId k = 8;
  const double p = 0.5;
  const PowTable pow(1.0 - p, static_cast<uint32_t>(g.MaxQueryDegree()) + 2);
  const std::vector<BucketId> assignment =
      Partition::Random(g.num_data(), k, 5).assignment();
  QueryNeighborData ndata;
  ndata.Build(g, assignment);
  const auto entries_of = [&](VertexId q) { return ndata.Entries(q); };

  AffinitySweep reference;
  bool have_reference = false;
  for (const int num_shards : {1, 3, 8}) {
    std::vector<int32_t> owner(g.num_data());
    for (VertexId v = 0; v < g.num_data(); ++v) {
      owner[v] = static_cast<int32_t>(HashToBounded(55, v, 3, num_shards));
    }
    AffinitySweep sweep;
    sweep.BuildSharded(g, entries_of, pow, owner, num_shards);
    EXPECT_EQ(sweep.last_build_adjacency_reads(), g.num_edges())
        << "W=" << num_shards;
    if (!have_reference) {
      reference.BuildSharded(g, entries_of, pow, owner, 1);
      have_reference = true;
    }
    ASSERT_EQ(sweep.TotalEntries(), reference.TotalEntries())
        << "W=" << num_shards;
    for (VertexId v = 0; v < g.num_data(); ++v) {
      const auto a = reference.Entries(v);
      const auto b = sweep.Entries(v);
      ASSERT_EQ(a.size(), b.size()) << "W=" << num_shards << " v=" << v;
      for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i], b[i]) << "W=" << num_shards << " v=" << v;
      }
    }
  }
  // The threaded variant keeps the single-pass guarantee.
  ThreadPool pool(4);
  std::vector<int32_t> owner(g.num_data());
  for (VertexId v = 0; v < g.num_data(); ++v) {
    owner[v] = static_cast<int32_t>(HashToBounded(55, v, 3, 4));
  }
  AffinitySweep threaded;
  threaded.BuildSharded(g, entries_of, pow, owner, 4, &pool);
  EXPECT_EQ(threaded.last_build_adjacency_reads(), g.num_edges());
}

TEST(AffinitySweepSharded, ApplyDeltasShardedMatchesFreshBuild) {
  // BSP wiring: every worker receives the records of queries with neighbors
  // in its shard and patches only owned vertices. Broadcasting the full
  // record list to every shard must therefore be equivalent to a fresh
  // owner-sharded build (the ownership filter discards the rest).
  const BipartiteGraph g = TestGraph(29);
  const BucketId k = 16;
  const double p = 0.5;
  const PowTable pow(1.0 - p, static_cast<uint32_t>(g.MaxQueryDegree()) + 2);
  std::vector<BucketId> assignment(g.num_data(), 0);
  QueryNeighborData ndata;
  ndata.Build(g, assignment);
  const int num_shards = 4;
  std::vector<int32_t> owner(g.num_data());
  for (VertexId v = 0; v < g.num_data(); ++v) {
    owner[v] = static_cast<int32_t>(HashToBounded(13, v, 2, num_shards));
  }
  const auto entries_of = [&](VertexId q) { return ndata.Entries(q); };

  AffinitySweep sweep;
  sweep.BuildSharded(g, entries_of, pow, owner, num_shards);
  for (uint64_t round = 0; round < 30; ++round) {
    const std::vector<VertexMove> moves =
        RandomBatch(&assignment, k, 41, round, 25);
    std::vector<NeighborDelta> deltas;
    ndata.ApplyMoves(g, moves, nullptr, nullptr, &deltas);
    const std::vector<std::span<const NeighborDelta>> inboxes(
        num_shards, std::span<const NeighborDelta>(deltas));
    const std::vector<uint64_t> work =
        sweep.ApplyDeltasSharded(g, inboxes, pow, owner);
    ASSERT_EQ(work.size(), static_cast<size_t>(num_shards));

    AffinitySweep fresh;
    fresh.BuildSharded(g, entries_of, pow, owner, num_shards);
    ASSERT_TRUE(sweep.ApproxEquals(fresh, 1e-9, 1e-9)) << "round " << round;
    ASSERT_EQ(sweep.TotalEntries(), fresh.TotalEntries()) << "round " << round;
  }
}

TEST(AffinitySweep, DeterministicModeIsThreadCountInvariant) {
  const BipartiteGraph g = TestGraph(21);
  const BucketId k = 8;
  const double p = 0.3;
  const PowTable pow(1.0 - p, static_cast<uint32_t>(g.MaxQueryDegree()) + 2);
  ThreadPool pool1(1);
  ThreadPool pool4(4);

  std::vector<BucketId> a1 = Partition::Random(g.num_data(), k, 5).assignment();
  std::vector<BucketId> a4 = a1;
  QueryNeighborData nd1, nd4;
  nd1.Build(g, a1, &pool1);
  nd4.Build(g, a4, &pool4);
  AffinitySweep s1(/*deterministic=*/true), s4(/*deterministic=*/true);
  s1.Build(g, nd1, pow, &pool1);
  s4.Build(g, nd4, pow, &pool4);

  for (uint64_t round = 0; round < 10; ++round) {
    const std::vector<VertexMove> moves = RandomBatch(&a1, k, 31, round, 20);
    a4 = a1;
    std::vector<NeighborDelta> d1, d4;
    nd1.ApplyMoves(g, moves, &pool1, nullptr, &d1);
    nd4.ApplyMoves(g, moves, &pool4, nullptr, &d4);
    s1.ApplyDeltas(g, d1, pow, &pool1);
    s4.ApplyDeltas(g, d4, pow, &pool4);
    for (VertexId v = 0; v < g.num_data(); ++v) {
      const auto e1 = s1.Entries(v);
      const auto e4 = s4.Entries(v);
      ASSERT_EQ(e1.size(), e4.size()) << "v=" << v;
      for (size_t i = 0; i < e1.size(); ++i) {
        // Bitwise-equal floats: canonical record order makes the patched
        // accumulators independent of the emitting/applying thread counts.
        ASSERT_EQ(e1[i], e4[i]) << "v=" << v << " i=" << i;
      }
    }
  }
}

// ----------------------------------------- pull vs push target consistency
TEST(PullPushTargets, AgreeOnRandomGraphsAndRestrictedWindows) {
  for (const double p : {0.1, 0.5, 0.9}) {
    const BipartiteGraph g = TestGraph(7);
    const BucketId k = 8;
    const auto assignment = Partition::Random(g.num_data(), k, 2).assignment();
    QueryNeighborData ndata;
    ndata.Build(g, assignment);
    const GainComputer gain(p, static_cast<uint32_t>(g.MaxQueryDegree()));
    AffinitySweep sweep;
    sweep.Build(g, ndata, gain.pow_table());

    std::vector<double> affinity(static_cast<size_t>(k), 0.0);
    std::vector<BucketId> touched;
    const std::pair<BucketId, BucketId> windows[] = {{0, k}, {2, 6}, {5, 6}};
    for (const auto& [wb, we] : windows) {
      for (VertexId v = 0; v < g.num_data(); ++v) {
        if (g.DataDegree(v) == 0) continue;
        const BucketId from = assignment[v];
        const auto pull =
            gain.FindBestTarget(g, ndata, v, from, wb, we, &affinity, &touched);
        const auto push = gain.FindBestTargetPush(
            sweep, v, from, wb, we, static_cast<double>(g.DataDegree(v)));
        ASSERT_EQ(pull.bucket == -1, push.bucket == -1)
            << "p=" << p << " v=" << v << " window [" << wb << "," << we << ")";
        if (pull.bucket == -1) continue;
        EXPECT_NEAR(pull.gain, push.gain,
                    1e-9 + 1e-6 * std::fabs(pull.gain))
            << "p=" << p << " v=" << v;
        if (pull.bucket != push.bucket) {
          // Divergent picks are legal only on an affinity tie ≤ 1e-9:
          // evaluate both in the pull frame.
          const double g_pull = gain.MoveGain(g, ndata, v, from, pull.bucket);
          const double g_push = gain.MoveGain(g, ndata, v, from, push.bucket);
          EXPECT_NEAR(g_pull, g_push, 1e-9)
              << "p=" << p << " v=" << v << " pull->" << pull.bucket
              << " push->" << push.bucket;
        }
      }
    }
  }
}

/// Graph where data vertex 0 has two queries with exactly symmetric mass in
/// buckets 1 and 2: q0 = {0, 1}, q1 = {0, 2}, v1 -> bucket 1, v2 -> bucket 2.
BipartiteGraph TieGraph() {
  GraphBuilder builder;
  builder.AddHyperedge(0, {0, 1});
  builder.AddHyperedge(1, {0, 2});
  return builder.Build();
}

TEST(PullPushTargets, ExactTieBreaksToLowerBucketOnBothPaths) {
  const BipartiteGraph g = TieGraph();
  const std::vector<BucketId> assignment = {0, 1, 2};
  const BucketId k = 4;
  QueryNeighborData ndata;
  ndata.Build(g, assignment);
  const GainComputer gain(0.5, static_cast<uint32_t>(g.MaxQueryDegree()));
  AffinitySweep sweep;
  sweep.Build(g, ndata, gain.pow_table());

  std::vector<double> affinity(static_cast<size_t>(k), 0.0);
  std::vector<BucketId> touched;
  // Buckets 1 and 2 have identical affinity (one neighbor each, identical
  // float contributions); both scan paths must deterministically pick the
  // lower bucket id.
  const auto pull =
      gain.FindBestTarget(g, ndata, 0, 0, 0, k, &affinity, &touched);
  const auto push = gain.FindBestTargetPush(sweep, 0, 0, 0, k, 2.0);
  EXPECT_EQ(pull.bucket, 1);
  EXPECT_EQ(push.bucket, 1);
  EXPECT_NEAR(pull.gain, push.gain, 1e-12);
}

TEST(PullPushTargets, EmptyWindowFallbackIsSharedAndChecksFrom) {
  const BipartiteGraph g = TieGraph();
  const std::vector<BucketId> assignment = {0, 1, 2};
  const BucketId k = 8;
  QueryNeighborData ndata;
  ndata.Build(g, assignment);
  const GainComputer gain(0.5, static_cast<uint32_t>(g.MaxQueryDegree()));
  AffinitySweep sweep;
  sweep.Build(g, ndata, gain.pow_table());
  std::vector<double> affinity(static_cast<size_t>(k), 0.0);
  std::vector<BucketId> touched;

  // Window [4, 8) holds no occupied bucket: both paths fall back to the
  // lowest bucket of the window (4), with the empty-bucket gain.
  {
    const auto pull =
        gain.FindBestTarget(g, ndata, 0, 0, 4, 8, &affinity, &touched);
    const auto push = gain.FindBestTargetPush(sweep, 0, 0, 4, 8, 2.0);
    EXPECT_EQ(pull.bucket, 4);
    EXPECT_EQ(push.bucket, 4);
    EXPECT_NEAR(pull.gain, push.gain, 1e-12);
  }
  // Window starting at `from` must skip it: [0, 4) with from = 0 and no
  // touched candidate cannot return 0. (Buckets 1 and 2 are touched here,
  // so restrict to [0, 1), where only `from` itself lies -> no target.)
  {
    const auto pull =
        gain.FindBestTarget(g, ndata, 0, 0, 0, 1, &affinity, &touched);
    const auto push = gain.FindBestTargetPush(sweep, 0, 0, 0, 1, 2.0);
    EXPECT_EQ(pull.bucket, -1);
    EXPECT_EQ(push.bucket, -1);
  }
  // Window [3, 8) with from = 3: fallback must pick 4, never `from`.
  {
    std::vector<BucketId> moved = assignment;
    moved[0] = 3;
    QueryNeighborData nd2;
    nd2.Build(g, moved);
    AffinitySweep sw2;
    sw2.Build(g, nd2, gain.pow_table());
    const auto pull =
        gain.FindBestTarget(g, nd2, 0, 3, 3, 8, &affinity, &touched);
    const auto push = gain.FindBestTargetPush(sw2, 0, 3, 3, 8, 2.0);
    EXPECT_EQ(pull.bucket, 4);
    EXPECT_EQ(push.bucket, 4);
  }
}

// ----------------------------------------------- group-restricted push scan
TEST(AffinitySweep, EntriesInWindowIsAPureSliceOfEntries) {
  const BipartiteGraph g = TestGraph(13);
  const BucketId k = 16;
  const auto assignment = Partition::Random(g.num_data(), k, 4).assignment();
  QueryNeighborData ndata;
  ndata.Build(g, assignment);
  const GainComputer gain(0.5, static_cast<uint32_t>(g.MaxQueryDegree()));
  AffinitySweep sweep;
  sweep.Build(g, ndata, gain.pow_table());

  for (VertexId v = 0; v < g.num_data(); ++v) {
    const auto all = sweep.Entries(v);
    const std::pair<BucketId, BucketId> windows[] = {
        {0, k}, {3, 9}, {9, 9}, {k, k + 4}};
    for (const auto& [wb, we] : windows) {
      const auto window = sweep.EntriesInWindow(v, wb, we);
      // Exactly the contiguous run of entries with bucket in [wb, we) — a
      // view into the same arena storage, no copy.
      size_t expected = 0;
      const AffinityEntry* first = nullptr;
      for (const AffinityEntry& e : all) {
        if (e.bucket >= wb && e.bucket < we) {
          if (first == nullptr) first = &e;
          ++expected;
        }
      }
      ASSERT_EQ(window.size(), expected) << "v=" << v << " [" << wb << ","
                                         << we << ")";
      if (expected > 0) EXPECT_EQ(window.data(), first);
    }
  }
}

TEST(PullPushTargets, GroupedScanMatchesDirectSiblingEvaluation) {
  // The recursion scan: sparse sibling candidate sets (non-contiguous
  // bucket ids) against the same topology-free accumulators. Reference =
  // direct per-sibling MoveGain argmax with first-candidate-wins ties —
  // exactly the grouped pull path of both engines.
  for (const double p : {0.1, 0.5, 0.9}) {
    const BipartiteGraph g = TestGraph(7);
    const BucketId k = 8;
    const auto assignment = Partition::Random(g.num_data(), k, 2).assignment();
    QueryNeighborData ndata;
    ndata.Build(g, assignment);
    const GainComputer gain(p, static_cast<uint32_t>(g.MaxQueryDegree()));
    AffinitySweep sweep;
    sweep.Build(g, ndata, gain.pow_table());

    const std::vector<std::vector<BucketId>> sibling_sets = {
        {0, 4}, {2, 3}, {1, 3, 5, 7}, {0, 2, 4, 6}};
    for (const auto& siblings : sibling_sets) {
      for (VertexId v = 0; v < g.num_data(); ++v) {
        if (g.DataDegree(v) == 0) continue;
        const BucketId from = assignment[v];
        if (std::find(siblings.begin(), siblings.end(), from) ==
            siblings.end()) {
          continue;  // vertex not in this group
        }
        GainComputer::BestTarget ref;
        bool first = true;
        for (BucketId candidate : siblings) {
          if (candidate == from) continue;
          const double gg = gain.MoveGain(g, ndata, v, from, candidate);
          if (first || gg > ref.gain) {
            ref.gain = gg;
            ref.bucket = candidate;
            first = false;
          }
        }
        const auto push = gain.FindBestTargetPushGrouped(
            sweep, v, from, std::span<const BucketId>(siblings),
            static_cast<double>(g.DataDegree(v)));
        ASSERT_EQ(ref.bucket == -1, push.bucket == -1)
            << "p=" << p << " v=" << v;
        if (ref.bucket == -1) continue;
        if (ref.bucket == push.bucket) {
          EXPECT_NEAR(ref.gain, push.gain, 1e-9 + 1e-6 * std::fabs(ref.gain))
              << "p=" << p << " v=" << v;
        } else {
          // Divergent picks are legal only on a gain tie, evaluated in the
          // pull frame (the PR 2 contract).
          const double g_ref = gain.MoveGain(g, ndata, v, from, ref.bucket);
          const double g_push = gain.MoveGain(g, ndata, v, from, push.bucket);
          EXPECT_NEAR(g_ref, g_push, 1e-9)
              << "p=" << p << " v=" << v << " ref->" << ref.bucket
              << " push->" << push.bucket;
        }
      }
    }
  }
}

TEST(PullPushTargets, GroupedFallbackPicksLowestSiblingNotFrom) {
  const BipartiteGraph g = TieGraph();
  const std::vector<BucketId> assignment = {0, 1, 2};
  QueryNeighborData ndata;
  ndata.Build(g, assignment);
  const GainComputer gain(0.5, static_cast<uint32_t>(g.MaxQueryDegree()));
  AffinitySweep sweep;
  sweep.Build(g, ndata, gain.pow_table());

  // Siblings {0, 4, 6} from bucket 0: 4 and 6 are both empty — the grouped
  // pull argmax takes the first candidate ≠ from (= 4), so must the push
  // fallback; the gain is the empty-bucket gain.
  const std::vector<BucketId> siblings = {0, 4, 6};
  const auto push = gain.FindBestTargetPushGrouped(
      sweep, 0, 0, std::span<const BucketId>(siblings), 2.0);
  EXPECT_EQ(push.bucket, 4);
  EXPECT_NEAR(push.gain, gain.MoveGain(g, ndata, 0, 0, 4), 1e-12);
  // A one-member "group" (from only) has no target.
  const std::vector<BucketId> lone = {0};
  EXPECT_EQ(gain.FindBestTargetPushGrouped(
                sweep, 0, 0, std::span<const BucketId>(lone), 2.0)
                .bucket,
            -1);
}

// -------------------------------------- refiner-level tolerance equivalence
BipartiteGraph RefinerGraph() {
  SocialGraphConfig config;
  config.num_users = 700;
  config.avg_degree = 8;
  config.seed = 21;
  return GenerateSocialGraph(config);
}

class PullPushTrajectory
    : public testing::TestWithParam<MoveBrokerOptions::Strategy> {};

TEST_P(PullPushTrajectory, FanoutTrajectoriesAgreeWithinTolerance) {
  const BipartiteGraph g = RefinerGraph();
  const BucketId k = 8;
  const MoveTopology topo = MoveTopology::FullK(k, g.num_data(), 0.05);

  RefinerOptions pull_options;
  pull_options.exploration_probability = 0.05;
  pull_options.incremental_rebuild_fraction = 1.0;
  pull_options.broker.strategy = GetParam();
  pull_options.sweep_mode = RefinerOptions::SweepMode::kPull;
  RefinerOptions push_options = pull_options;
  push_options.sweep_mode = RefinerOptions::SweepMode::kPush;

  Partition p_pull = Partition::BalancedRandom(g.num_data(), k, 2);
  Partition p_push = p_pull;
  Refiner pull(g, pull_options);
  Refiner push(g, push_options);

  for (uint64_t iter = 0; iter < 8; ++iter) {
    const IterationStats a = pull.RunIteration(topo, &p_pull, 9, iter);
    const IterationStats b = push.RunIteration(topo, &p_push, 9, iter);
    EXPECT_FALSE(a.push_sweep);
    EXPECT_TRUE(b.push_sweep);

    // Tolerance harness: the two scan directions accumulate floats in
    // different orders, so the trajectories agree to tolerance, not bits —
    // per-vertex proposals match modulo gain ties (the Debug build asserts
    // that inside RunIteration) and the end-to-end objective trajectory
    // stays within rtol 1e-6.
    const double f_pull = AveragePFanout(g, p_pull.assignment(), 0.5);
    const double f_push = AveragePFanout(g, p_push.assignment(), 0.5);
    ASSERT_NEAR(f_pull, f_push, 1e-6 * std::max(f_pull, f_push))
        << "iteration " << iter;
  }
  EXPECT_EQ(push.num_full_rebuilds(), 1u);
  EXPECT_EQ(push.num_sweep_builds(), 1u)
      << "steady state must patch, not rebuild, the accumulators";
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, PullPushTrajectory,
    testing::Values(MoveBrokerOptions::Strategy::kPlainProbability,
                    MoveBrokerOptions::Strategy::kHistogramMatching,
                    MoveBrokerOptions::Strategy::kExactPairing));

TEST(PullPushTrajectory, FanoutLimitFallsBackToPull) {
  // p = 1, future_splits = 1 ⇒ pow base 0: the push gain formulas are
  // unavailable (they divide by B), so kAuto must run the pull path.
  const BipartiteGraph g = RefinerGraph();
  const BucketId k = 4;
  const MoveTopology topo = MoveTopology::FullK(k, g.num_data(), 0.05);
  RefinerOptions options;
  options.p = 1.0;
  options.sweep_mode = RefinerOptions::SweepMode::kAuto;
  Partition partition = Partition::BalancedRandom(g.num_data(), k, 3);
  Refiner refiner(g, options);
  const IterationStats stats = refiner.RunIteration(topo, &partition, 1, 0);
  EXPECT_FALSE(stats.push_sweep);
  EXPECT_EQ(refiner.num_sweep_builds(), 0u);
}

}  // namespace
}  // namespace shp
