// Refiner-level tests: grouped vs full-k equivalence, anchor penalties,
// exploration determinism, and iteration accounting.
#include <gtest/gtest.h>

#include "core/partition.h"
#include "core/refiner.h"
#include "graph/gen_planted.h"
#include "graph/gen_social.h"
#include "graph/io_partition.h"

namespace shp {
namespace {

BipartiteGraph SmallGraph(uint64_t seed = 4) {
  SocialGraphConfig config;
  config.num_users = 800;
  config.avg_degree = 8;
  config.seed = seed;
  return GenerateSocialGraph(config);
}

// A grouped topology whose single group holds both buckets of a bisection
// must behave like the full-k topology at k = 2.
TEST(Refiner, GroupedBisectionMatchesFullK) {
  const BipartiteGraph g = SmallGraph();
  RefinerOptions options;
  options.exploration_probability = 0.0;

  Partition full = Partition::BalancedRandom(g.num_data(), 2, 7);
  Partition grouped = full;

  MoveTopology full_topo = MoveTopology::FullK(2, g.num_data(), 0.05);
  MoveTopology grouped_topo;
  grouped_topo.k = 2;
  grouped_topo.full_k = false;
  grouped_topo.group_children = {{0, 1}};
  grouped_topo.group_of_bucket = {0, 0};
  grouped_topo.capacity = full_topo.capacity;

  Refiner refiner_full(g, options);
  Refiner refiner_grouped(g, options);
  for (uint64_t iter = 0; iter < 3; ++iter) {
    refiner_full.RunIteration(full_topo, &full, 1, iter);
    refiner_grouped.RunIteration(grouped_topo, &grouped, 1, iter);
  }
  EXPECT_EQ(full.assignment(), grouped.assignment())
      << "identical candidate sets and seeds must give identical moves";
}

TEST(Refiner, InactiveBucketsAreFrozen) {
  const BipartiteGraph g = SmallGraph();
  Partition partition = Partition::BalancedRandom(g.num_data(), 4, 3);
  const std::vector<BucketId> before = partition.assignment();

  // Only buckets {0, 1} form a group; 2 and 3 are not refined.
  MoveTopology topo;
  topo.k = 4;
  topo.full_k = false;
  topo.group_children = {{0, 1}};
  topo.group_of_bucket = {0, 0, -1, -1};
  topo.capacity = MoveTopology::FullK(4, g.num_data(), 0.05).capacity;

  RefinerOptions options;
  Refiner refiner(g, options);
  refiner.RunIteration(topo, &partition, 5, 0);
  for (VertexId v = 0; v < g.num_data(); ++v) {
    if (before[v] >= 2) {
      EXPECT_EQ(partition.bucket_of(v), before[v])
          << "vertices in inactive buckets must not move";
    } else {
      EXPECT_LT(partition.bucket_of(v), 2) << "group members stay in group";
    }
  }
}

TEST(Refiner, AnchorPenaltySuppressesMovement) {
  const BipartiteGraph g = SmallGraph();
  auto moved_with_penalty = [&](double penalty) {
    Partition partition = Partition::BalancedRandom(g.num_data(), 4, 9);
    const std::vector<BucketId> anchor = partition.assignment();
    const MoveTopology topo = MoveTopology::FullK(4, g.num_data(), 0.05);
    RefinerOptions options;
    Refiner refiner(g, options);
    uint64_t moved = 0;
    for (uint64_t iter = 0; iter < 5; ++iter) {
      moved += refiner
                   .RunIteration(topo, &partition, 2, iter, nullptr, &anchor,
                                 penalty)
                   .num_moved;
    }
    return moved;
  };
  const uint64_t free_moves = moved_with_penalty(0.0);
  const uint64_t heavy_moves = moved_with_penalty(1e9);
  EXPECT_EQ(heavy_moves, 0u) << "prohibitive penalty freezes everything";
  EXPECT_GT(free_moves, 0u);
}

TEST(Refiner, DrawFloorCutsDrawsOnConvergedInstanceTrajectoryUnchanged) {
  // Superstep-4 draw floor regression: on a converged instance most bucket
  // pairs carry one-sided or negative-only demand, so their probability
  // rows are all zero and their draws are skipped — the draw count must
  // drop strictly below the proposal count while the move trajectory stays
  // bit-identical to the draw-everything reference (a skipped draw had
  // probability 0 and could never fire).
  const BipartiteGraph g = SmallGraph(11);
  const BucketId k = 8;
  const MoveTopology topo = MoveTopology::FullK(k, g.num_data(), 0.05);
  const uint64_t iterations = 14;

  RefinerOptions floor_options;
  RefinerOptions reference_options;
  reference_options.broker.skip_zero_probability_pairs = false;
  Refiner with_floor(g, floor_options);
  Refiner reference(g, reference_options);
  Partition p_floor = Partition::BalancedRandom(g.num_data(), k, 3);
  Partition p_reference = p_floor;

  IterationStats last_floor;
  IterationStats last_reference;
  for (uint64_t iter = 0; iter < iterations; ++iter) {
    last_floor = with_floor.RunIteration(topo, &p_floor, 5, iter);
    last_reference = reference.RunIteration(topo, &p_reference, 5, iter);
    ASSERT_EQ(p_floor.assignment(), p_reference.assignment())
        << "trajectories must be bit-identical (iteration " << iter << ")";
  }
  EXPECT_LT(last_floor.moved_fraction, 0.02) << "instance must converge";
  EXPECT_GT(last_floor.num_proposals, 0u);
  EXPECT_EQ(last_reference.num_draws, last_reference.num_proposals)
      << "the reference draws every active proposal";
  EXPECT_LT(last_floor.num_draws, last_floor.num_proposals)
      << "converged dead pairs must stop drawing";
}

TEST(Refiner, DeterministicAcrossRuns) {
  const BipartiteGraph g = SmallGraph();
  auto run = [&] {
    Partition partition = Partition::BalancedRandom(g.num_data(), 8, 3);
    const MoveTopology topo = MoveTopology::FullK(8, g.num_data(), 0.05);
    RefinerOptions options;
    options.exploration_probability = 0.05;  // exploration is hash-driven too
    Refiner refiner(g, options);
    for (uint64_t iter = 0; iter < 4; ++iter) {
      refiner.RunIteration(topo, &partition, 11, iter);
    }
    return partition.assignment();
  };
  EXPECT_EQ(run(), run());
}

TEST(Refiner, StatsAddUp) {
  const BipartiteGraph g = SmallGraph();
  Partition partition = Partition::BalancedRandom(g.num_data(), 4, 1);
  const MoveTopology topo = MoveTopology::FullK(4, g.num_data(), 0.05);
  RefinerOptions options;
  Refiner refiner(g, options);
  const IterationStats stats = refiner.RunIteration(topo, &partition, 1, 0);
  EXPECT_LE(stats.num_moved, stats.num_proposals);
  EXPECT_NEAR(stats.moved_fraction,
              static_cast<double>(stats.num_moved) / g.num_data(), 1e-12);
  partition.CheckInvariants();
}

// ---------------------------------------------------------- partition I/O
TEST(PartitionIo, RoundTrip) {
  const std::vector<BucketId> assignment = {0, 3, 1, 2, 2, 0};
  const std::string path = testing::TempDir() + "/assignment.txt";
  ASSERT_TRUE(WritePartition(assignment, path).ok());
  auto back = ReadPartition(path, 4, assignment.size());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), assignment);
}

TEST(PartitionIo, RejectsOutOfRangeBucket) {
  const std::string path = testing::TempDir() + "/bad_assignment.txt";
  ASSERT_TRUE(WritePartition({0, 1, 5}, path).ok());
  auto result = ReadPartition(path, 4);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(PartitionIo, RejectsWrongCount) {
  const std::string path = testing::TempDir() + "/short_assignment.txt";
  ASSERT_TRUE(WritePartition({0, 1}, path).ok());
  EXPECT_FALSE(ReadPartition(path, 2, 5).ok());
}

TEST(PartitionIo, SkipsComments) {
  const std::string path = testing::TempDir() + "/commented.txt";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("% header\n0\n# mid\n1\n", f);
  std::fclose(f);
  auto result = ReadPartition(path, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 2u);
}

}  // namespace
}  // namespace shp
