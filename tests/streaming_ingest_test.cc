// Streaming-ingest equivalence tests: a graph ingested under a memory
// budget (with adjacency spilled to disk arenas) must be indistinguishable
// — through the accessor surface and through a full SHP-k refinement — from
// the same file loaded fully in memory, across the high_degree_factor
// split-point sweep. Plus budget/spill-dir failure modes and the
// hybrid-graph serialization guard.
#include "graph/streaming_ingest.h"

#include <cstdio>
#include <string>
#include <sys/stat.h>
#include <vector>

#include <gtest/gtest.h>

#include "core/shp.h"
#include "graph/bipartite_graph.h"
#include "graph/gen_powerlaw.h"
#include "graph/io_binary.h"
#include "graph/io_edgelist.h"

namespace shp {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

BipartiteGraph TestGraph() {
  PowerLawConfig config;
  config.num_queries = 1500;
  config.num_data = 3000;
  config.target_edges = 30000;
  config.seed = 11;
  return GeneratePowerLaw(config);
}

// Compares through the accessor surface only — the spilled graph has no
// resident CSR arrays to compare against.
void ExpectGraphsIdentical(const BipartiteGraph& streamed,
                           const BipartiteGraph& reference) {
  ASSERT_EQ(streamed.num_queries(), reference.num_queries());
  ASSERT_EQ(streamed.num_data(), reference.num_data());
  ASSERT_EQ(streamed.num_edges(), reference.num_edges());
  for (VertexId q = 0; q < reference.num_queries(); ++q) {
    auto s = streamed.QueryNeighbors(q);
    auto r = reference.QueryNeighbors(q);
    ASSERT_EQ(std::vector<VertexId>(s.begin(), s.end()),
              std::vector<VertexId>(r.begin(), r.end()))
        << "query " << q;
  }
  for (VertexId v = 0; v < reference.num_data(); ++v) {
    auto s = streamed.DataNeighbors(v);
    auto r = reference.DataNeighbors(v);
    ASSERT_EQ(std::vector<VertexId>(s.begin(), s.end()),
              std::vector<VertexId>(r.begin(), r.end()))
        << "data " << v;
  }
}

StreamingIngestOptions SpillOptions(const std::string& spill_dir,
                                    double factor, uint64_t budget_mb) {
  StreamingIngestOptions options;
  options.memory_budget_mb = budget_mb;
  options.high_degree_factor = factor;
  options.spill_dir = spill_dir;
  return options;
}

TEST(StreamingIngest, EdgeListMatchesInMemoryAcrossFactors) {
  const BipartiteGraph graph = TestGraph();
  const std::string path = TempPath("stream.txt");
  ASSERT_TRUE(WriteBipartiteEdgeList(graph, path).ok());
  auto reference = ReadBipartiteEdgeList(path, /*drop_trivial=*/false);
  ASSERT_TRUE(reference.ok());

  for (double factor : {0.0, 0.5, 1.0}) {
    StreamingIngestStats stats;
    auto streamed = StreamingIngestEdgeList(
        path, SpillOptions(TempPath("spill_txt"), factor, 2), &stats);
    ASSERT_TRUE(streamed.ok())
        << "factor " << factor << ": " << streamed.status().ToString();
      std::string validate_error;
    ASSERT_TRUE(streamed.value().Validate(&validate_error)) << validate_error;
    ExpectGraphsIdentical(streamed.value(), reference.value());
    if (factor == 0.0) {
      // factor 0 spills every list.
      EXPECT_EQ(stats.spilled_queries, stats.num_queries);
      EXPECT_EQ(stats.spilled_data, stats.num_data);
      EXPECT_GT(stats.spilled_bytes, 0u);
      EXPECT_EQ(stats.resident_bytes, 0u);
      EXPECT_FALSE(streamed.value().fully_resident());
    }
    EXPECT_EQ(stats.num_edges, reference.value().num_edges());
    EXPECT_EQ(stats.edges_read, stats.num_edges);
  }
}

TEST(StreamingIngest, BinaryMatchesInMemoryAcrossFactors) {
  const BipartiteGraph graph = TestGraph();
  const std::string path = TempPath("stream.shpg");
  ASSERT_TRUE(WriteBinaryGraph(graph, path).ok());
  auto reference = ReadBinaryGraph(path);
  ASSERT_TRUE(reference.ok());

  for (double factor : {0.0, 0.5, 1.0}) {
    StreamingIngestStats stats;
    auto streamed = StreamingIngestBinary(
        path, SpillOptions(TempPath("spill_bin"), factor, 3), &stats);
    ASSERT_TRUE(streamed.ok())
        << "factor " << factor << ": " << streamed.status().ToString();
      std::string validate_error;
    ASSERT_TRUE(streamed.value().Validate(&validate_error)) << validate_error;
    ExpectGraphsIdentical(streamed.value(), reference.value());
    if (factor == 0.0) EXPECT_GT(stats.spilled_bytes, 0u);
  }
}

TEST(StreamingIngest, ShpRefinementBitIdenticalOnSpilledGraph) {
  const BipartiteGraph graph = TestGraph();
  const std::string path = TempPath("refine.shpg");
  ASSERT_TRUE(WriteBinaryGraph(graph, path).ok());
  auto reference = ReadBinaryGraph(path);
  ASSERT_TRUE(reference.ok());

  StreamingIngestStats stats;
  auto streamed = StreamingIngestBinary(
      path, SpillOptions(TempPath("spill_refine"), 0.5, 3), &stats);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  ASSERT_GT(stats.spilled_bytes, 0u)
      << "fixture must actually exercise the spill path";

  ShpKOptions options;
  options.k = 8;
  options.max_iterations = 6;
  options.seed = 17;
  auto from_spill = MakeShpK(options)->Partition(streamed.value(), 8, nullptr);
  auto from_memory =
      MakeShpK(options)->Partition(reference.value(), 8, nullptr);
  ASSERT_TRUE(from_spill.ok());
  ASSERT_TRUE(from_memory.ok());
  // Same seed, same graph, same accessor-driven sweep: the assignment must
  // be bit-identical, not merely close in quality.
  EXPECT_EQ(from_spill.value(), from_memory.value());
}

TEST(StreamingIngest, BudgetTooSmallIsInvalidArgument) {
  const BipartiteGraph graph = TestGraph();
  const std::string path = TempPath("tiny_budget.txt");
  ASSERT_TRUE(WriteBipartiteEdgeList(graph, path).ok());
  StreamingIngestOptions options = SpillOptions(TempPath("spill_none"), 1.0, 0);
  auto result = StreamingIngestEdgeList(path, options, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(StreamingIngest, SpillDirRequiredWhenSpilling) {
  const BipartiteGraph graph = TestGraph();
  const std::string path = TempPath("nodir.txt");
  ASSERT_TRUE(WriteBipartiteEdgeList(graph, path).ok());
  // factor 0 forces spilling; empty spill_dir must be rejected up front.
  auto result =
      StreamingIngestEdgeList(path, SpillOptions("", 0.0, 2), nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(StreamingIngest, SpillFilesUnlinkedUnlessKept) {
  const BipartiteGraph graph = TestGraph();
  const std::string path = TempPath("unlink.txt");
  ASSERT_TRUE(WriteBipartiteEdgeList(graph, path).ok());

  const std::string spill_dir = TempPath("spill_unlink");
  auto streamed =
      StreamingIngestEdgeList(path, SpillOptions(spill_dir, 0.0, 2), nullptr);
  ASSERT_TRUE(streamed.ok());
  struct stat st;
  // Default: unlinked at open — readable through the mapping, gone from the
  // namespace (crash-safe cleanup).
  EXPECT_NE(::stat((spill_dir + "/query_spill.shpa").c_str(), &st), 0);
  EXPECT_GT(streamed.value().num_edges(), 0u);

  StreamingIngestOptions keep = SpillOptions(spill_dir, 0.0, 2);
  keep.keep_spill_files = true;
  auto kept = StreamingIngestEdgeList(path, keep, nullptr);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(::stat((spill_dir + "/query_spill.shpa").c_str(), &st), 0);
}

TEST(StreamingIngest, HybridGraphRefusesBinarySerialization) {
  const BipartiteGraph graph = TestGraph();
  const std::string path = TempPath("nowrite.txt");
  ASSERT_TRUE(WriteBipartiteEdgeList(graph, path).ok());
  auto streamed = StreamingIngestEdgeList(
      path, SpillOptions(TempPath("spill_nowrite"), 0.0, 2), nullptr);
  ASSERT_TRUE(streamed.ok());
  ASSERT_FALSE(streamed.value().fully_resident());
  Status st = WriteBinaryGraph(streamed.value(), TempPath("out.shpg"));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(StreamingIngest, MissingInputIsIoError) {
  auto result = StreamingIngestEdgeList(
      TempPath("no_such_file.txt"),
      SpillOptions(TempPath("spill_missing"), 1.0, 8), nullptr);
  ASSERT_FALSE(result.ok());
  auto binary = StreamingIngestBinary(
      TempPath("no_such_file.shpg"),
      SpillOptions(TempPath("spill_missing"), 1.0, 8), nullptr);
  ASSERT_FALSE(binary.ok());
}

TEST(StreamingIngest, FullyResidentUnderGenerousBudget) {
  // A budget far larger than the graph: nothing spills, no spill_dir needed,
  // and the result still matches the in-memory reader.
  const BipartiteGraph graph = TestGraph();
  const std::string path = TempPath("resident.txt");
  ASSERT_TRUE(WriteBipartiteEdgeList(graph, path).ok());
  auto reference = ReadBipartiteEdgeList(path, /*drop_trivial=*/false);
  ASSERT_TRUE(reference.ok());

  StreamingIngestStats stats;
  StreamingIngestOptions options;
  options.memory_budget_mb = 256;
  options.high_degree_factor = 1e9;  // never spill by degree
  auto streamed = StreamingIngestEdgeList(path, options, &stats);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  EXPECT_EQ(stats.spilled_bytes, 0u);
  ExpectGraphsIdentical(streamed.value(), reference.value());
}

}  // namespace
}  // namespace shp
