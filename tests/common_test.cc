// Unit tests for src/common: status, rng, histogram, stats, table, flags,
// csv, env helpers, thread pool.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>

#include "common/csv.h"
#include "common/env.h"
#include "common/flags.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/table.h"
#include "common/thread_pool.h"

namespace shp {
namespace {

// ---------------------------------------------------------------- Status
TEST(Status, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "Ok");
}

TEST(Status, CarriesCodeAndMessage) {
  Status st = Status::Corruption("bad header");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  EXPECT_EQ(st.ToString(), "Corruption: bad header");
}

TEST(Status, ResultHoldsValueOrStatus) {
  Result<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  Result<int> bad(Status::NotFound("nope"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(Status, ReturnIfErrorMacro) {
  auto fails = []() -> Status {
    SHP_RETURN_IF_ERROR(Status::IoError("disk"));
    return Status::Ok();
  };
  EXPECT_EQ(fails().code(), StatusCode::kIoError);
}

// ------------------------------------------------------------------- Rng
TEST(Rng, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t x = rng.NextInt(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 7u) << "all values of a small range should appear";
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, GaussianMomentsApproximatelyStandard) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.NextGaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, ExponentialMeanOne) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.NextExponential());
  EXPECT_NEAR(stats.mean(), 1.0, 0.03);
}

TEST(Rng, HashToUnitDoubleIsPureFunction) {
  EXPECT_EQ(HashToUnitDouble(1, 2, 3), HashToUnitDouble(1, 2, 3));
  EXPECT_NE(HashToUnitDouble(1, 2, 3), HashToUnitDouble(1, 2, 4));
}

TEST(Rng, HashToBoundedCoversRange) {
  std::set<uint64_t> seen;
  for (uint64_t v = 0; v < 500; ++v) seen.insert(HashToBounded(9, v, 0, 8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, SplitMixAvalanche) {
  // Flipping one input bit should flip roughly half the output bits.
  int total = 0;
  for (uint64_t x = 0; x < 256; ++x) {
    total += __builtin_popcountll(SplitMix64(x) ^ SplitMix64(x ^ 1));
  }
  EXPECT_NEAR(total / 256.0, 32.0, 4.0);
}

// ------------------------------------------------------------- Histogram
TEST(ExponentialHistogram, BinEdgesAreExponential) {
  ExponentialHistogram h(1.0, 2.0, 8);
  EXPECT_EQ(h.BinFor(0.5), 0);   // below min
  EXPECT_EQ(h.BinFor(1.5), 1);   // [1, 2)
  EXPECT_EQ(h.BinFor(3.0), 2);   // [2, 4)
  EXPECT_EQ(h.BinFor(1e9), 7);   // clamped to last bin
  EXPECT_DOUBLE_EQ(h.BinLower(1), 1.0);
  EXPECT_DOUBLE_EQ(h.BinUpper(1), 2.0);
}

TEST(ExponentialHistogram, PercentileInterpolates) {
  ExponentialHistogram h(1.0, 2.0, 16);
  for (int i = 0; i < 100; ++i) h.Add(3.0);  // all in bin [2, 4)
  const double p50 = h.Percentile(50);
  EXPECT_GE(p50, 2.0);
  EXPECT_LE(p50, 4.0);
}

TEST(ExponentialHistogram, MergeAddsCounts) {
  ExponentialHistogram a(1.0, 2.0, 8), b(1.0, 2.0, 8);
  a.Add(1.5);
  b.Add(1.7, 3);
  a.Merge(b);
  EXPECT_EQ(a.total_count(), 4u);
  EXPECT_EQ(a.BinCount(1), 4u);
}

TEST(ExponentialHistogram, NegativeSamplesClampToZeroBin) {
  ExponentialHistogram h(1.0, 2.0, 8);
  h.Add(-5.0);
  EXPECT_EQ(h.BinCount(0), 1u);
}

// ----------------------------------------------------------------- Stats
TEST(Stats, PercentileExactOnSortedData) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 2.0);
}

TEST(Stats, PercentileEmptyIsZero) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
}

TEST(Stats, PercentileInPlaceMatchesSortingReference) {
  // The nth_element path must return bit-identical values to the sorting
  // reference for every percentile, on data of every parity and with ties.
  Rng rng(77);
  for (size_t n : {1u, 2u, 3u, 10u, 101u, 1000u}) {
    std::vector<double> samples;
    samples.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      // Quantized draws force duplicate values into the sample.
      samples.push_back(std::floor(rng.NextDouble() * 50.0) / 5.0);
    }
    for (double p : {0.0, 1.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0}) {
      std::vector<double> scratch = samples;
      EXPECT_DOUBLE_EQ(PercentileInPlace(&scratch, p), Percentile(samples, p))
          << "n=" << n << " p=" << p;
    }
  }
}

TEST(Stats, PercentileInPlaceEdgeCases) {
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(PercentileInPlace(&empty, 50), 0.0);
  EXPECT_DOUBLE_EQ(PercentileInPlace(nullptr, 50), 0.0);
  std::vector<double> one = {7.0};
  EXPECT_DOUBLE_EQ(PercentileInPlace(&one, 0), 7.0);
  EXPECT_DOUBLE_EQ(PercentileInPlace(&one, 100), 7.0);
  // Out-of-range percentiles clamp instead of reading out of bounds.
  std::vector<double> v = {1, 2, 3};
  EXPECT_DOUBLE_EQ(PercentileInPlace(&v, -5), 1.0);
  EXPECT_DOUBLE_EQ(PercentileInPlace(&v, 200), 3.0);
}

TEST(Stats, RunningStatsMatchesDirectComputation) {
  RunningStats stats;
  std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  for (double x : v) stats.Add(x);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(Stats, RunningStatsMergeEqualsCombined) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    (i % 2 == 0 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Stats, LogLogSlopeRecoversPowerLaw) {
  std::vector<double> x, y;
  for (double v : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    x.push_back(v);
    y.push_back(3.0 * v * v);  // slope 2
  }
  EXPECT_NEAR(LogLogSlope(x, y), 2.0, 1e-9);
}

// ----------------------------------------------------------------- Table
TEST(Table, AlignsAndFormats) {
  TablePrinter t({"a", "bb"});
  t.AddRow({"1", "2"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_EQ(TablePrinter::FmtCount(1234567), "1,234,567");
  EXPECT_EQ(TablePrinter::FmtCount(-1000), "-1,000");
  EXPECT_EQ(TablePrinter::FmtPercent(0.123, 1), "+12.3%");
  EXPECT_EQ(TablePrinter::Fmt(1.005, 2), "1.00");
}

TEST(Table, MarkdownShape) {
  TablePrinter t({"x"});
  t.AddRow({"1"});
  EXPECT_EQ(t.ToMarkdown(), "| x |\n|---|\n| 1 |\n");
}

// ----------------------------------------------------------------- Flags
TEST(Flags, ParsesEqualsAndBooleanForms) {
  const char* argv[] = {"prog", "--k=32", "--p=0.5", "--verbose", "input"};
  auto flags = Flags::Parse(5, argv).value();
  EXPECT_EQ(flags.GetInt("k", 0), 32);
  EXPECT_DOUBLE_EQ(flags.GetDouble("p", 0), 0.5);
  EXPECT_TRUE(flags.GetBool("verbose", false));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "input");
}

TEST(Flags, DefaultsWhenAbsentOrMalformed) {
  const char* argv[] = {"prog", "--k=abc"};
  auto flags = Flags::Parse(2, argv).value();
  EXPECT_EQ(flags.GetInt("k", 7), 7);
  EXPECT_EQ(flags.GetInt("missing", 9), 9);
}

TEST(Flags, DoubleDashStopsFlagParsing) {
  const char* argv[] = {"prog", "--", "--k=1"};
  auto flags = Flags::Parse(3, argv).value();
  EXPECT_FALSE(flags.Has("k"));
  ASSERT_EQ(flags.positional().size(), 1u);
}

// ------------------------------------------------------------------- Csv
TEST(Csv, QuotesSpecialCharacters) {
  CsvWriter w({"a", "b"});
  w.AddRow({"x,y", "line\nbreak"});
  const std::string s = w.ToString();
  EXPECT_NE(s.find("\"x,y\""), std::string::npos);
  EXPECT_NE(s.find("\"line\nbreak\""), std::string::npos);
}

TEST(Csv, RoundTripFile) {
  CsvWriter w({"h"});
  w.AddRow({"v"});
  const std::string path = testing::TempDir() + "/shp_csv_test.csv";
  ASSERT_TRUE(w.WriteFile(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buffer[64] = {};
  std::ignore = std::fread(buffer, 1, sizeof(buffer) - 1, f);
  std::fclose(f);
  EXPECT_STREQ(buffer, "h\nv\n");
}

// ------------------------------------------------------------------- Env
TEST(Env, ParsesIntAndFallsBack) {
  ::setenv("SHP_TEST_ENV_INT", "42", 1);
  EXPECT_EQ(GetEnvInt("SHP_TEST_ENV_INT", 0), 42);
  EXPECT_EQ(GetEnvInt("SHP_TEST_ENV_MISSING", 5), 5);
  ::setenv("SHP_TEST_ENV_BAD", "xyz", 1);
  EXPECT_EQ(GetEnvInt("SHP_TEST_ENV_BAD", 5), 5);
}

// ------------------------------------------------------------ ThreadPool
TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelForEach(1000, [&](size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SubmitAndWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) pool.Submit([&] { counter++; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelForEach(4, [&](size_t) {
    pool.ParallelForEach(10, [&](size_t) { total++; });
  });
  EXPECT_EQ(total.load(), 40);
}

TEST(ThreadPool, ZeroItemsIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t, size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

}  // namespace
}  // namespace shp
