// Chaos harness for the fault-tolerant superstep protocol: every fault class
// the FaultInjector can produce, across cluster widths W ∈ {1, 3, 8}, runs
// against a fault-free twin with identical seeds. The contract under test is
// the ISSUE's acceptance criterion: the fault is detected (counters), the
// engine recovers (bounded retransmission, same-iteration reship, worker
// rebuild), and the recovery trajectory is equivalent to the fault-free one
// (rtol 1e-4 on the paper's probabilistic-fanout objective; bit-exact for
// pure straggler faults). Debug builds additionally DCHECK the replica and
// proposal equivalence inside every RunIteration.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <tuple>
#include <vector>

#include "core/move_topology.h"
#include "core/partition.h"
#include "engine/bsp_engine.h"
#include "engine/message_router.h"
#include "engine/shp_bsp.h"
#include "graph/gen_social.h"
#include "objective/objective.h"

namespace shp {
namespace {

BipartiteGraph TestGraph() {
  SocialGraphConfig config;
  config.num_users = 600;
  config.avg_degree = 8;
  config.seed = 3;
  return GenerateSocialGraph(config);
}

struct TwinRun {
  std::vector<IterationStats> stats;      ///< faulty run, per iteration
  BspRefiner::FaultCounters counters;     ///< faulty run, cumulative
  std::vector<BucketId> faulty_assignment;
  std::vector<BucketId> clean_assignment;
};

/// Runs a faulty engine against a fault-free twin with identical seeds and
/// asserts per-iteration trajectory equivalence (rtol 1e-4). `mutate_at`,
/// when ≥ 0, applies the same external partition mutation to BOTH twins
/// before that iteration (the PR 3 self-heal scenario).
TwinRun RunTwins(const BipartiteGraph& g, int workers,
                 const FaultSchedule& schedule, uint64_t iterations,
                 MoveBrokerOptions::Strategy strategy =
                     MoveBrokerOptions::Strategy::kPlainProbability,
                 int64_t mutate_at = -1, const BspConfig& base = {}) {
  const BucketId k = 8;
  const MoveTopology topo = MoveTopology::FullK(k, g.num_data(), 0.05);
  RefinerOptions options;
  options.sweep_mode = RefinerOptions::SweepMode::kPush;
  options.broker.strategy = strategy;
  // Always patch: epoch 1+ must be delta-exchange epochs so the enveloped
  // wire path (where the faults land) actually runs.
  options.incremental_rebuild_fraction = 1.0;

  BspConfig faulty_config = base;
  faulty_config.num_workers = workers;
  faulty_config.fault_schedule = &schedule;
  BspConfig clean_config = base;
  clean_config.num_workers = workers;

  BspRefiner faulty(g, options, faulty_config);
  BspRefiner clean(g, options, clean_config);
  Partition p_faulty = Partition::BalancedRandom(g.num_data(), k, 2);
  Partition p_clean = p_faulty;

  TwinRun run;
  for (uint64_t iter = 0; iter < iterations; ++iter) {
    if (mutate_at >= 0 && iter == static_cast<uint64_t>(mutate_at)) {
      for (VertexId v = 0; v < 50 && v < g.num_data(); ++v) {
        const BucketId to = (p_faulty.bucket_of(v) + 1) % k;
        p_faulty.Move(v, to);
        p_clean.Move(v, to);
      }
    }
    run.stats.push_back(faulty.RunIteration(topo, &p_faulty, 9, iter));
    clean.RunIteration(topo, &p_clean, 9, iter);
    const double f_faulty = AveragePFanout(g, p_faulty.assignment(), 0.5);
    const double f_clean = AveragePFanout(g, p_clean.assignment(), 0.5);
    EXPECT_NEAR(f_faulty, f_clean, 1e-4 * std::max(f_faulty, f_clean))
        << "iteration " << iter << " (W=" << workers
        << "): recovery trajectory diverged from the fault-free twin";
  }
  run.counters = faulty.fault_counters();
  run.faulty_assignment = p_faulty.assignment();
  run.clean_assignment = p_clean.assignment();
  return run;
}

// ---- the 7 × {1, 3, 8} fault matrix ----

class ChaosMatrix
    : public testing::TestWithParam<std::tuple<FaultKind, int>> {};

TEST_P(ChaosMatrix, DetectsRecoversAndKeepsTrajectory) {
  const auto [kind, workers] = GetParam();
  const BipartiteGraph g = TestGraph();

  FaultSchedule schedule;
  schedule.seed = 0xc4a05;
  const bool wire_fault = kind != FaultKind::kStallWorker &&
                          kind != FaultKind::kKillWorker;
  if (wire_fault) {
    // Epoch 2 is a steady delta-exchange epoch (epoch 0 bootstraps, epoch 1
    // seeds the link history a reorder replays); hit every link's first
    // delivery attempt.
    schedule.events.push_back({kind, /*epoch=*/2, -1, -1, /*attempt=*/0, 0});
  } else {
    // Worker faults target worker 0 (present at every width) at an
    // iteration boundary with live state.
    schedule.events.push_back(
        {kind, /*epoch=*/2, /*src=*/0, -1, 0,
         kind == FaultKind::kStallWorker ? uint64_t{5000} : uint64_t{0}});
  }

  const TwinRun run = RunTwins(g, workers, schedule, /*iterations=*/6);
  const auto& c = run.counters;

  if (wire_fault) {
    if (workers == 1) {
      // One worker = no remote links: nothing to inject, nothing detected.
      EXPECT_EQ(c.faults_detected, 0u);
      EXPECT_EQ(c.retransmits, 0u);
    } else {
      EXPECT_GT(c.faults_detected, 0u)
          << "an injected wire fault must be detected";
      if (kind == FaultKind::kDuplicateBuffer) {
        // The first copy is accepted; the duplicate is flagged and ignored —
        // no retransmission is needed.
        EXPECT_EQ(c.retransmits, 0u);
        EXPECT_EQ(c.reship_recoveries, 0u);
      } else {
        EXPECT_GT(c.retransmits, 0u)
            << "a damaged first attempt must trigger a retransmission";
        EXPECT_EQ(c.reship_recoveries, 0u)
            << "a single-attempt fault must recover on the retry, "
               "not the reship path";
      }
    }
  } else if (kind == FaultKind::kStallWorker) {
    EXPECT_GT(c.stalled_workers, 0u);
    // A straggler changes timing, never state: bit-exact trajectory.
    EXPECT_EQ(run.faulty_assignment, run.clean_assignment);
    bool saw_stall = false;
    for (const auto& s : run.stats) saw_stall |= s.stalled_workers > 0;
    EXPECT_TRUE(saw_stall);
  } else {  // kKillWorker
    EXPECT_GT(c.workers_recovered, 0u)
        << "the killed worker's replicas must be rebuilt";
    bool saw_recovery = false;
    for (const auto& s : run.stats) saw_recovery |= s.workers_recovered > 0;
    EXPECT_TRUE(saw_recovery);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFaultsAndWidths, ChaosMatrix,
    testing::Combine(testing::Values(FaultKind::kDropBuffer,
                                     FaultKind::kDuplicateBuffer,
                                     FaultKind::kReorderBuffer,
                                     FaultKind::kTruncateBuffer,
                                     FaultKind::kBitFlipBuffer,
                                     FaultKind::kStallWorker,
                                     FaultKind::kKillWorker),
                     testing::Values(1, 3, 8)));

// ---- beyond the matrix: retry exhaustion, degradation, self-heal ----

TEST(Chaos, ExhaustedRetriesFallBackToSameIterationReship) {
  // Drop every delivery attempt of epoch 2 (first + both retries): the link
  // protocol must give up, invalidate the replicas, and recover through the
  // bootstrap reship in the SAME iteration — trajectory unchanged.
  const BipartiteGraph g = TestGraph();
  FaultSchedule schedule;
  for (int attempt = 0; attempt < 3; ++attempt) {
    schedule.events.push_back(
        {FaultKind::kDropBuffer, /*epoch=*/2, -1, -1, attempt, 0});
  }
  const TwinRun run = RunTwins(g, /*workers=*/3, schedule, 6);
  EXPECT_GT(run.counters.faults_detected, 0u);
  EXPECT_GT(run.counters.retransmits, 0u);
  EXPECT_GT(run.counters.reship_recoveries, 0u)
      << "an unrecoverable link must fall into the reship path";
  EXPECT_GT(run.stats[2].reship_recoveries, 0u)
      << "recovery happens within the failed iteration, not the next one";
}

TEST(Chaos, RepeatedLinkFailuresDegradeToBackoffThenRecover) {
  // Two consecutive unrecoverable epochs (threshold) push the links into
  // backoff: the engine must report degraded links and run full-reship
  // bootstraps until the backoff expires, then return to delta exchange —
  // all without leaving the fault-free trajectory.
  const BipartiteGraph g = TestGraph();
  FaultSchedule schedule;
  for (uint64_t epoch = 2; epoch <= 3; ++epoch) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      schedule.events.push_back(
          {FaultKind::kDropBuffer, epoch, -1, -1, attempt, 0});
    }
  }
  BspConfig base;
  base.link_degrade_threshold = 2;
  base.link_backoff_epochs = 2;
  const TwinRun run = RunTwins(
      g, /*workers=*/3, schedule, /*iterations=*/10,
      MoveBrokerOptions::Strategy::kPlainProbability, -1, base);
  uint64_t degraded_iterations = 0;
  for (const auto& s : run.stats) {
    if (s.degraded_links > 0) ++degraded_iterations;
  }
  EXPECT_GT(degraded_iterations, 0u)
      << "repeated failures must degrade the links into backoff";
  EXPECT_GT(run.counters.reship_recoveries, 0u);
  // Recovery: the last iterations run clean again (backoff expired, links
  // resynced, no further faults scheduled).
  EXPECT_EQ(run.stats.back().degraded_links, 0u);
  EXPECT_EQ(run.stats.back().faults_detected, 0u);
}

// PR 3's external-mutation self-heal under concurrent wire faults: the
// recursive driver mutates the partition behind the refiner's back in the
// same round a buffer is dropped (all attempts). Both recovery mechanisms —
// the diff-scan resync and the reship fallback — must compose, across all
// three broker strategies.
class ChaosSelfHeal
    : public testing::TestWithParam<MoveBrokerOptions::Strategy> {};

TEST_P(ChaosSelfHeal, ExternalMutationPlusDroppedBufferSameRound) {
  const BipartiteGraph g = TestGraph();
  FaultSchedule schedule;
  for (int attempt = 0; attempt < 3; ++attempt) {
    schedule.events.push_back(
        {FaultKind::kDropBuffer, /*epoch=*/3, -1, -1, attempt, 0});
  }
  const TwinRun run = RunTwins(g, /*workers=*/3, schedule, /*iterations=*/6,
                               GetParam(), /*mutate_at=*/3);
  EXPECT_GT(run.counters.faults_detected, 0u);
  EXPECT_GT(run.counters.reship_recoveries, 0u);
  EXPECT_TRUE(run.stats[3].full_rebuild)
      << "the external mutation must trigger the diff-scan self-heal";
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, ChaosSelfHeal,
    testing::Values(MoveBrokerOptions::Strategy::kPlainProbability,
                    MoveBrokerOptions::Strategy::kHistogramMatching,
                    MoveBrokerOptions::Strategy::kExactPairing));

TEST(Chaos, FaultFreeScheduleLeavesCountersZero) {
  // An engine with no schedule must never report fault activity — the
  // counters are the bench gate's evidence that fault-free runs take the
  // zero-overhead path.
  const BipartiteGraph g = TestGraph();
  const TwinRun run = RunTwins(g, 3, FaultSchedule{}, 4);
  EXPECT_EQ(run.counters.faults_detected, 0u);
  EXPECT_EQ(run.counters.retransmits, 0u);
  EXPECT_EQ(run.counters.reship_recoveries, 0u);
  EXPECT_EQ(run.counters.workers_recovered, 0u);
  EXPECT_EQ(run.counters.stalled_workers, 0u);
  EXPECT_EQ(run.faulty_assignment, run.clean_assignment)
      << "two identically seeded fault-free runs are bit-identical";
}

}  // namespace
}  // namespace shp
